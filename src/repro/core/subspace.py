"""Exact O(1) evolution of the GRK algorithm's 3-dimensional subspace.

Every operator the algorithm applies — ``I_t``, global diffusion, block-local
diffusion, the Step 3 move-out and controlled diffusion — preserves the
symmetry type

    ``u |t>  +  v * (uniform over the target block minus t)
             +  w * (uniform over all non-target blocks)``

so the whole run is captured by three real coordinates (plus the ancilla
branch in Step 3).  Tracking them costs O(1) per *schedule*, independent of
``N``: Step 1 and Step 2 are exact SU(2) rotations with closed forms, Step 3
is three affine updates.  This model

- plans integer schedules (``l2`` refinement) without touching a state
  vector,
- evaluates the paper's table at ``N`` up to ``2**60`` and beyond, and
- serves as an independent oracle for property tests against the full
  simulator (they must agree to ~1e-12 on every coordinate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.blockspec import BlockSpec
from repro.grover.angles import grover_angle

__all__ = ["SubspaceCoordinates", "SubspaceFinal", "SubspaceGRK"]


@dataclass(frozen=True)
class SubspaceCoordinates:
    """Symmetric-state coordinates (see module docstring).

    Attributes:
        target: amplitude ``u`` of the target address.
        block_rest: per-address amplitude ``v`` of the other ``N/K - 1``
            addresses in the target block.
        outside: per-address amplitude ``w`` of every address in the other
            ``K - 1`` blocks.
    """

    target: float
    block_rest: float
    outside: float

    def norm_squared(self, spec: BlockSpec) -> float:
        """Total probability mass (must be 1 for any unitary history)."""
        b = spec.block_size
        n = spec.n_items
        return (
            self.target**2
            + (b - 1) * self.block_rest**2
            + (n - b) * self.outside**2
        )

    def target_block_mass(self, spec: BlockSpec) -> float:
        """Probability of the target block (``alpha_yt^2`` in eq. (2))."""
        return self.target**2 + (spec.block_size - 1) * self.block_rest**2

    def nontarget_average(self, spec: BlockSpec) -> float:
        """Mean amplitude over all ``N - 1`` non-target addresses.

        Figure 5's dotted line: Step 2 arranges this to be (asymptotically)
        half of ``outside``.
        """
        b, n = spec.block_size, spec.n_items
        return ((b - 1) * self.block_rest + (n - b) * self.outside) / (n - 1)

    def to_statevector(self, spec: BlockSpec, target_address: int) -> np.ndarray:
        """Materialise the full ``N``-vector (small ``N`` cross-validation)."""
        amps = np.full(spec.n_items, self.outside)
        amps[spec.slice_of(spec.block_of(target_address))] = self.block_rest
        amps[target_address] = self.target
        return amps


@dataclass(frozen=True)
class SubspaceFinal:
    """Post-Step-3 coordinates, ancilla branches separated.

    Attributes:
        target_moved: amplitude of ``|t>`` in the ancilla-1 branch (parked
            there by the move-out ``M``).
        target_regrown: amplitude of ``|t>`` regenerated in the ancilla-0
            branch by the controlled diffusion (``2S/N``).
        block_rest: per-address amplitude in the target block (ancilla 0).
        outside: per-address amplitude in non-target blocks (ancilla 0) —
            **exactly zero** when the zeroing condition is met.
    """

    target_moved: float
    target_regrown: float
    block_rest: float
    outside: float

    def success_probability(self, spec: BlockSpec) -> float:
        """Probability a block measurement lands in the target block."""
        b = spec.block_size
        return (
            self.target_moved**2
            + self.target_regrown**2
            + (b - 1) * self.block_rest**2
        )

    def failure_probability(self, spec: BlockSpec) -> float:
        """Probability mass left in the ``K - 1`` non-target blocks."""
        return (spec.n_items - spec.block_size) * self.outside**2


class SubspaceGRK:
    """Closed-form evaluator of the GRK schedule on a given :class:`BlockSpec`."""

    def __init__(self, spec: BlockSpec):
        self.spec = spec
        self._beta = grover_angle(spec.n_items)
        self._beta_block = grover_angle(spec.block_size) if spec.block_size > 1 else math.pi / 2

    # ------------------------------------------------------------- stage maps
    def after_step1(self, l1: int) -> SubspaceCoordinates:
        """Exact state after ``l1`` global Grover iterations from uniform."""
        if l1 < 0:
            raise ValueError("l1 must be non-negative")
        n = self.spec.n_items
        ang = (2 * l1 + 1) * self._beta
        u = math.sin(ang)
        rest = math.cos(ang) / math.sqrt(n - 1)
        return SubspaceCoordinates(target=u, block_rest=rest, outside=rest)

    def after_step2(self, l1: int, l2: int) -> SubspaceCoordinates:
        """Exact state after Step 2's ``l2`` block-local iterations.

        The target block rotates by ``2 * beta_block`` per iteration in its
        own (target, block-rest) plane; non-target blocks are fixed points.
        """
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        c = self.after_step1(l1)
        b = self.spec.block_size
        if b == 1:
            # Degenerate K == N: blocks are single addresses; Step 2 is
            # identity (each "block" is trivially uniform).
            return c
        rest_len = math.sqrt(b - 1)
        alpha = math.hypot(c.target, c.block_rest * rest_len)
        gamma = math.atan2(c.target, c.block_rest * rest_len) + 2 * l2 * self._beta_block
        return SubspaceCoordinates(
            target=alpha * math.sin(gamma),
            block_rest=alpha * math.cos(gamma) / rest_len,
            outside=c.outside,
        )

    def final(self, l1: int, l2: int) -> SubspaceFinal:
        """Exact state after Step 3 (move-out + controlled diffusion)."""
        c = self.after_step2(l1, l2)
        b, n = self.spec.block_size, self.spec.n_items
        # M parks the target amplitude in the ancilla-1 branch ...
        moved = c.target
        # ... and the controlled diffusion inverts the ancilla-0 branch
        # about the mean of the *full* uniform state (target entry now 0).
        mean = ((b - 1) * c.block_rest + (n - b) * c.outside) / n
        return SubspaceFinal(
            target_moved=moved,
            target_regrown=2.0 * mean,
            block_rest=2.0 * mean - c.block_rest,
            outside=2.0 * mean - c.outside,
        )

    # ------------------------------------------------------------ shorthands
    def success_probability(self, l1: int, l2: int) -> float:
        """Block-measurement success of the ``(l1, l2)`` schedule."""
        return self.final(l1, l2).success_probability(self.spec)

    def failure_probability(self, l1: int, l2: int) -> float:
        """``1 - success`` computed directly from the residual amplitudes
        (numerically superior to subtracting near-equal numbers)."""
        return self.final(l1, l2).failure_probability(self.spec)

    def required_block_rest(self, after_step1: SubspaceCoordinates) -> float:
        """The exact ``v*`` Step 2 must reach for Step 3 to zero non-target
        blocks: ``(b - 1) v* = w (b - N/2)`` (the finite-``N`` form of the
        paper's ``Y`` computation)."""
        b, n = self.spec.block_size, self.spec.n_items
        return after_step1.outside * (b - n / 2.0) / (b - 1)
