"""Backend-selection helpers shared by the core runners.

Three execution backends serve the GRK runners: ``"kernels"`` (structured
:mod:`repro.statevector.ops` reflections, any ``K | N`` geometry) and the
two registered gate-level circuit simulators ``"naive"`` / ``"compiled"``
(see :data:`repro.circuits.BACKENDS`), which need power-of-two geometry.
"""

from __future__ import annotations

from repro.core.blockspec import BlockSpec
from repro.util.bits import ilog2

__all__ = ["KERNEL_BACKEND", "CIRCUIT_BACKENDS", "validate_backend", "circuit_geometry"]

KERNEL_BACKEND = "kernels"
CIRCUIT_BACKENDS = ("naive", "compiled")


def validate_backend(backend: str) -> str:
    """Check *backend* is a known runner backend; returns it unchanged."""
    if backend != KERNEL_BACKEND and backend not in CIRCUIT_BACKENDS:
        known = ", ".join((KERNEL_BACKEND, *CIRCUIT_BACKENDS))
        raise ValueError(f"unknown backend {backend!r} (known: {known})")
    return backend


def circuit_geometry(spec: BlockSpec, backend: str) -> tuple[int, int]:
    """``(n_address_qubits, n_block_bits)`` for the circuit backends.

    Raises:
        ValueError: when ``N`` or ``K`` is not a power of two — gate-level
            circuits cannot express that geometry.
    """
    try:
        return ilog2(spec.n_items), ilog2(spec.n_blocks)
    except ValueError:
        raise ValueError(
            f"backend {backend!r} runs gate-level circuits and needs N and K "
            f"to be powers of two, got (N={spec.n_items}, K={spec.n_blocks}); "
            "use backend='kernels' for general geometries"
        ) from None
