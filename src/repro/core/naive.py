"""Section 1.2's naive quantum partial search: Grover over K−1 blocks.

Pick ``K - 1`` of the ``K`` blocks (leave one out), run standard quantum
search restricted to their ``N(1 - 1/K)`` addresses, and measure.  Verify
the measured address with one classical query: if it is the target, answer
its block; otherwise the target must be in the left-out block.  Queries:

    ``(pi/4) sqrt((K-1) N / K) + 1  ~  (pi/4)(1 - 1/(2K)) sqrt(N)``

— an ``O(1/K)`` saving, the quantum analogue of the classical trick, and the
baseline the GRK algorithm's ``Theta(1/sqrt(K))`` saving is measured against.

The restricted search is faithful: amplitudes start uniform over the chosen
blocks and zero elsewhere; the phase oracle acts on the full space (flipping
a zero amplitude when the target is left out — a no-op, exactly as physics
would have it), and diffusion reflects about the uniform state *of the
chosen subset* (:func:`repro.statevector.ops.invert_about_mean_masked`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blockspec import BlockSpec
from repro.grover.angles import optimal_iterations, success_probability_after
from repro.oracle.database import Database
from repro.oracle.quantum import PhaseOracle
from repro.statevector import ops
from repro.statevector.measurement import sample_addresses
from repro.util.rng import as_rng

__all__ = ["NaivePartialSearchResult", "run_naive_partial_search"]


@dataclass(frozen=True)
class NaivePartialSearchResult:
    """Outcome of the naive baseline.

    Attributes:
        spec: the ``(N, K)`` geometry.
        left_out_block: the block excluded from the quantum search.
        measured_address: what the final measurement returned.
        verified: result of the classical verification query at that address.
        block_guess: the algorithm's answer.
        success_probability: exact probability the answer is correct,
            *conditioned on this left-out choice* (1 when the target was in
            the left-out block; the restricted-Grover success otherwise).
        queries: total oracle queries (quantum iterations + 1 verification).
    """

    spec: BlockSpec
    left_out_block: int
    measured_address: int
    verified: bool
    block_guess: int
    success_probability: float
    queries: int


def run_naive_partial_search(
    database: Database,
    n_blocks: int,
    *,
    left_out_block: int | None = None,
    iterations: int | None = None,
    rng=None,
) -> NaivePartialSearchResult:
    """Run the K−1-block baseline against a counted oracle.

    Args:
        database: database with exactly one marked address.
        n_blocks: ``K``.
        left_out_block: which block to exclude (uniformly random if ``None``,
            as the paper prescribes).
        iterations: Grover iterations over the restricted space; default is
            the optimum for ``(K-1) N / K`` items.
        rng: randomness for the block choice and the final measurement.

    Returns:
        :class:`NaivePartialSearchResult`.
    """
    n = database.n_items
    spec = BlockSpec(n, n_blocks)
    marked = database.reveal_marked()
    if len(marked) != 1:
        raise ValueError("naive partial search requires exactly one marked item")
    target = next(iter(marked))
    target_block = spec.block_of(target)

    gen = as_rng(rng)
    if left_out_block is None:
        left_out_block = int(gen.integers(spec.n_blocks))
    if not 0 <= left_out_block < spec.n_blocks:
        raise ValueError(f"left_out_block {left_out_block} out of range")

    searched = [y for y in range(spec.n_blocks) if y != left_out_block]
    mask = spec.mask_of(searched)
    m = int(mask.sum())
    if iterations is None:
        iterations = optimal_iterations(m)

    amps = np.zeros(n)
    amps[mask] = 1.0 / np.sqrt(m)

    oracle = PhaseOracle(database)
    start_count = database.counter.count
    for _ in range(iterations):
        oracle.apply(amps)
        ops.invert_about_mean_masked(amps, mask)

    measured = int(sample_addresses(amps, rng=gen))
    verified = bool(database.query(measured))  # counted classical query
    block_guess = spec.block_of(measured) if verified else left_out_block
    queries = database.counter.count - start_count

    if target_block == left_out_block:
        # Target untouched: the state stayed uniform over the searched
        # blocks, verification fails, and the left-out answer is correct.
        success = 1.0
    else:
        success = success_probability_after(m, iterations)
    return NaivePartialSearchResult(
        spec=spec,
        left_out_block=left_out_block,
        measured_address=measured,
        verified=verified,
        block_guess=block_guess,
        success_probability=success,
        queries=queries,
    )
