"""Theorem 2's reduction, executable: full search via nested partial search.

Run partial search on the ``N``-item database to learn the target's block;
restrict to that block (an ``N/K``-item database) and repeat; once the
remaining range is small (the paper switches below ``~ N^(1/3)``), finish by
brute force.  Total queries telescope into the geometric series

    ``alpha_K (1 + K^{-1/2} + K^{-1} + ...) sqrt(N)
        <= alpha_K sqrt(K)/(sqrt(K)-1) sqrt(N)``.

The paper runs this reduction *hypothetically* to derive the lower bound; we
run it *for real* on the simulator — every level's sub-database shares one
query counter, so the measured total can be checked against the series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.algorithm import run_partial_search
from repro.oracle.database import Database
from repro.util.rng import as_rng

__all__ = ["ReductionLevel", "IteratedSearchResult", "run_iterated_full_search"]


@dataclass(frozen=True)
class ReductionLevel:
    """Accounting for one level of the reduction.

    Attributes:
        size: sub-database size at this level.
        queries: queries spent by this level's partial search.
        block_guess: block the level reported.
        success_probability: that level's exact success probability.
    """

    size: int
    queries: int
    block_guess: int
    success_probability: float


@dataclass(frozen=True)
class IteratedSearchResult:
    """Outcome of the full reduction.

    Attributes:
        found_address: the address the procedure outputs.
        correct: whether it equals the true target.
        total_queries: all queries across all levels plus brute force.
        levels: per-level accounting, outermost first.
        brute_force_queries: classical probes spent on the final range.
        series_bound: the closed-form cap
            ``alpha sqrt(K)/(sqrt(K)-1) sqrt(N)`` evaluated with this run's
            own level-0 coefficient ``alpha`` (for the bench comparison).
    """

    found_address: int
    correct: bool
    total_queries: int
    levels: tuple[ReductionLevel, ...]
    brute_force_queries: int
    series_bound: float


def run_iterated_full_search(
    database: Database,
    n_blocks: int,
    epsilon: float | None = None,
    *,
    cutoff: int | None = None,
    sample: bool = False,
    rng=None,
) -> IteratedSearchResult:
    """Find the full target address using only partial searches + brute force.

    Args:
        database: database with exactly one marked address.
        n_blocks: ``K`` used at every level (must divide each level's size).
        epsilon: Step 1 parameter passed to every partial search (``None`` =
            optimal for ``K``).
        cutoff: switch to brute force at or below this size; default
            ``max(K, ceil(N**(1/3)))``, mirroring the paper's error argument.
        sample: if True, each level *measures* (samples) its block — the
            physical procedure; if False (default) each level outputs its
            most probable block, making the run deterministic.
        rng: randomness for sampling mode.

    Returns:
        :class:`IteratedSearchResult`.
    """
    n = database.n_items
    marked = database.reveal_marked()
    if len(marked) != 1:
        raise ValueError("iterated search requires exactly one marked item")
    target = next(iter(marked))
    if cutoff is None:
        cutoff = max(n_blocks, math.ceil(n ** (1.0 / 3.0)))
    gen = as_rng(rng)

    start_count = database.counter.count
    lo, size = 0, n
    levels: list[ReductionLevel] = []
    alpha_level0 = None

    while size > cutoff and size % n_blocks == 0 and size >= 2 * n_blocks:
        sub = database.restricted(range(lo, lo + size))
        before = database.counter.count
        result = run_partial_search(sub, n_blocks, epsilon)
        spent = database.counter.count - before
        guess = (
            int(result.measure_block(rng=gen)) if sample else result.block_guess
        )
        levels.append(
            ReductionLevel(
                size=size,
                queries=spent,
                block_guess=guess,
                success_probability=result.success_probability,
            )
        )
        if alpha_level0 is None:
            alpha_level0 = spent / math.sqrt(size)
        block_size = size // n_blocks
        lo += guess * block_size
        size = block_size

    # Brute force the remaining range classically (zero error).
    brute_before = database.counter.count
    found = None
    for addr in range(lo, lo + size):
        if database.query(addr):
            found = addr
            break
    if found is None:
        # The reduction descended into a wrong block; report the last probe
        # (the procedure errs, exactly as the paper's error analysis allows).
        found = lo + size - 1
    brute_force_queries = database.counter.count - brute_before

    total = database.counter.count - start_count
    root_k = math.sqrt(n_blocks)
    alpha = alpha_level0 if alpha_level0 is not None else 0.0
    return IteratedSearchResult(
        found_address=found,
        correct=(found == target),
        total_queries=total,
        levels=tuple(levels),
        brute_force_queries=brute_force_queries,
        series_bound=alpha * root_k / (root_k - 1.0) * math.sqrt(n),
    )
