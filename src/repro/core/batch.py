"""Vectorised batch execution: many partial searches in one numpy sweep.

All structured kernels broadcast over leading axes, so ``B`` independent
searches (one per target) can be advanced together as a ``(B, N)`` amplitude
matrix — one fused vector pass per oracle query instead of ``B`` Python
loops.  This is the guide-recommended way to compute success statistics over
*every* target of an instance (e.g. the worst-case-over-targets numbers in
the ablation bench) at 10-50x the throughput of per-target runs.

This module owns the *chunk primitive* :func:`execute_batch_rows` — one
memory-resident ``(B_chunk, N)`` sweep on a named backend.  Memory-bounded
sharding, process fan-out, and the supported public surface live in
:mod:`repro.engine` (:meth:`repro.engine.SearchEngine.search_batch`);
:func:`run_partial_search_batch` remains as a thin deprecated wrapper over
the engine's sharded executor so existing callers keep working unchanged.

Query accounting note: a batch models ``B`` separate executions of the same
circuit, so the per-run query count is the schedule's ``l1 + l2 + 1``; the
returned :class:`BatchResult` reports that per-run figure (matching what a
single :func:`repro.core.algorithm.run_partial_search` would count).

Besides the default structured-kernel sweep, ``backend="compiled"`` runs the
batch through one compiled gate-level program with per-row targets (see
:mod:`repro.circuits.compiler`), and ``backend="naive"`` loops the
interpreting simulator — the slow oracle the fast paths are tested against.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro import kernels
from repro.core.backends import circuit_geometry, validate_backend
from repro.core.blockspec import BlockSpec
from repro.core.parameters import GRKSchedule, plan_schedule
from repro.kernels import ExecutionPolicy

__all__ = ["BatchResult", "execute_batch_rows", "run_partial_search_batch"]


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a batched run over many targets.

    Attributes:
        spec: the shared ``(N, K)`` geometry.
        schedule: the shared integer schedule.
        targets: the target address per batch row, shape ``(B,)``.
        success_probabilities: exact block-measurement success per row.
        block_guesses: argmax block per row.
        queries_per_run: oracle queries each individual run costs.
    """

    spec: BlockSpec
    schedule: GRKSchedule
    targets: np.ndarray
    success_probabilities: np.ndarray
    block_guesses: np.ndarray
    queries_per_run: int

    @property
    def all_correct(self) -> bool:
        """Did every row's most-likely block equal its target's block?"""
        true_blocks = self.targets // self.spec.block_size
        return bool(np.all(self.block_guesses == true_blocks))

    @property
    def worst_success(self) -> float:
        """Minimum success probability across the batch."""
        return float(self.success_probabilities.min())


def execute_batch_rows(
    schedule: GRKSchedule,
    targets: np.ndarray,
    backend: str,
    policy: ExecutionPolicy | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run one memory-resident ``(B_chunk, N)`` GRK sweep.

    This is the shard primitive the engine's execution planner dispatches:
    rows evolve independently, so concatenating the outputs of consecutive
    chunks is bit-identical to one unsharded call.  The sweep itself is
    composed entirely of :mod:`repro.kernels` calls — this module owns the
    GRK *loop structure*, not the kernel math.

    Args:
        schedule: the shared integer schedule (fixes ``N`` and ``K``).
        targets: shape ``(B_chunk,)`` target addresses, one row each.
        backend: ``"kernels"``, ``"compiled"``, or ``"naive"`` (see
            :func:`run_partial_search_batch`).
        policy: the :class:`~repro.kernels.ExecutionPolicy` (dtype + row
            threads + kernel backend); ``None`` = the complex128
            single-threaded numpy default, which reproduces the seed
            results bit for bit.  ``row_threads`` splits the chunk into
            contiguous row slabs whose sweeps run on the GIL-releasing
            thread seam, and ``policy.backend`` selects which registered
            :class:`~repro.kernels.KernelBackend` advances each slab —
            both bit-identical at complex128, since rows never interact
            and every backend replays the reference float op sequence.

    Returns:
        ``(success_probabilities, block_guesses)`` arrays of shape
        ``(B_chunk,)``.
    """
    if policy is None:
        policy = ExecutionPolicy()
    if targets.size == 0:
        # Uniform empty-batch contract across backends: callers chunk work
        # and concatenate shard outputs unconditionally.
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.intp)
    if backend != "kernels":
        return _execute_rows_on_circuit_backend(schedule, targets, backend, policy)

    spec = schedule.spec
    n_items = spec.n_items
    b = targets.size
    dtype = policy.real_dtype  # the GRK gate set is real
    kernel_backend = kernels.resolve_kernel_backend(policy.backend)
    amps = kernels.uniform_batch(b, n_items, dtype=dtype)

    def sweep(sl: slice) -> tuple[np.ndarray, np.ndarray]:
        # The whole per-slab loop structure lives on the kernel backend:
        # the numpy backend replays the seed composition, the fused/numba
        # tiers replay the same float ops in fewer slab traversals.
        return kernel_backend.grk_sweep_rows(schedule, amps[sl], targets[sl])

    return kernels.sweep_row_slabs(
        sweep, b, policy.threads_for_slab(b, n_items)
    )


def run_partial_search_batch(
    n_items: int,
    n_blocks: int,
    targets,
    epsilon: float | None = None,
    *,
    schedule: GRKSchedule | None = None,
    backend: str = "kernels",
) -> BatchResult:
    """Run the GRK algorithm for many targets in one vectorised sweep.

    .. deprecated::
        This wrapper is kept for source compatibility; new code should use
        :meth:`repro.engine.SearchEngine.search_batch`, which adds the
        memory-bounded shard policy and process fan-out.  The wrapper
        executes through the engine's sharded executor with the default
        128 MiB budget, so large all-targets batches no longer allocate the
        full state matrix at once.

    Args:
        n_items: database size ``N``.
        n_blocks: block count ``K``.
        targets: iterable of target addresses (one independent run each).
        epsilon: Step 1 parameter (``None`` = optimal for this ``K``).
        schedule: pre-planned schedule overriding ``epsilon``.
        backend: ``"kernels"`` (default) advances the whole batch with the
            structured reflections of :func:`execute_batch_rows`;
            ``"compiled"`` compiles the full gate-level GRK circuit **once**
            with parametric targets and runs every row through the shared
            fused program
            (:meth:`~repro.circuits.compiler.CompiledCircuit.run_multi_target`);
            ``"naive"`` loops the gate-by-gate simulator over the targets —
            the slow correctness oracle the others are tested against.
            Circuit backends need ``N`` and ``K`` to be powers of two.

    Returns:
        :class:`BatchResult` with exact per-target success probabilities.

    This bypasses the counted-oracle interface (batching is an analysis
    tool, not an adversarial execution); its numbers are validated against
    the counted runner in the test suite.
    """
    warnings.warn(
        "run_partial_search_batch is deprecated; use "
        "repro.engine.SearchEngine.search_batch",
        DeprecationWarning,
        stacklevel=2,
    )
    validate_backend(backend)
    if schedule is None:
        schedule = plan_schedule(n_items, n_blocks, epsilon)
    spec = schedule.spec
    if spec.n_items != n_items or spec.n_blocks != n_blocks:
        raise ValueError("schedule does not match this instance's (N, K)")
    targets = np.asarray(list(targets), dtype=np.intp)
    if targets.ndim != 1 or targets.size == 0:
        raise ValueError("targets must be a non-empty 1-D collection")
    if targets.min() < 0 or targets.max() >= n_items:
        raise ValueError("targets out of address range")

    from repro.engine.plan import run_grk_batch_sharded

    success, guesses, _ = run_grk_batch_sharded(schedule, targets, backend)
    return BatchResult(
        spec=spec,
        schedule=schedule,
        targets=targets,
        success_probabilities=success,
        block_guesses=guesses,
        queries_per_run=schedule.queries,
    )


@lru_cache(maxsize=32)
def _multi_target_program(
    n_address_qubits: int, n_block_bits: int, l1: int, l2: int
):
    """Compile the parametric-target GRK circuit once per schedule shape."""
    from repro.circuits import partial_search_circuit
    from repro.circuits.compiler import compile_circuit

    circuit = partial_search_circuit(n_address_qubits, n_block_bits, 0, l1, l2)
    return compile_circuit(
        circuit, parametric_targets=True, n_address_qubits=n_address_qubits
    )


def _execute_rows_on_circuit_backend(
    schedule: GRKSchedule,
    targets: np.ndarray,
    backend: str,
    policy: ExecutionPolicy,
) -> tuple[np.ndarray, np.ndarray]:
    """Gate-level batched execution: one compiled program for all rows, or
    (``"naive"``) the interpreting simulator looped per target.

    The policy's dtype flows into the circuit kernels; ``row_threads``
    slabs the compiled multi-target run (program constants are shared and
    the diffusion scratch is thread-local, so slabs are bit-identical to
    the single sweep).
    """
    from repro.circuits import partial_search_circuit, run_circuit

    spec = schedule.spec
    n_address_qubits, n_block_bits = circuit_geometry(spec, backend)
    b = targets.size
    dtype = policy.complex_dtype
    if backend == "compiled":
        program = _multi_target_program(
            n_address_qubits, n_block_bits, schedule.l1, schedule.l2
        )

        def run_slab(sl: slice) -> np.ndarray:
            return program.run_multi_target(targets[sl], dtype=dtype)

        parts = kernels.map_row_slabs(run_slab, b, policy.effective_row_threads)
        final = parts[0] if len(parts) == 1 else np.concatenate(parts)
    else:  # "naive" — validate_backend already rejected everything else
        final = np.empty((b, 2 * spec.n_items), dtype=dtype)
        for i, t in enumerate(targets):
            circuit = partial_search_circuit(
                n_address_qubits, n_block_bits, int(t), schedule.l1, schedule.l2
            )
            final[i] = run_circuit(circuit, dtype=dtype)

    # Ancilla is the last wire: row layout is (address, ancilla); measuring
    # the block register traces the ancilla out incoherently.
    probs = np.abs(final.reshape(b, spec.n_items, 2)) ** 2
    block_probs = probs.reshape(b, spec.n_blocks, spec.block_size, 2).sum(axis=(2, 3))
    return kernels.success_and_guesses(block_probs, targets, spec.block_size)
