"""Vectorised batch execution: many partial searches in one numpy sweep.

All structured kernels broadcast over leading axes, so ``B`` independent
searches (one per target) can be advanced together as a ``(B, N)`` amplitude
matrix — one fused vector pass per oracle query instead of ``B`` Python
loops.  This is the guide-recommended way to compute success statistics over
*every* target of an instance (e.g. the worst-case-over-targets numbers in
the ablation bench) at 10-50x the throughput of per-target runs.

Query accounting note: a batch models ``B`` separate executions of the same
circuit, so the per-run query count is the schedule's ``l1 + l2 + 1``; the
returned :class:`BatchResult` reports that per-run figure (matching what a
single :func:`repro.core.algorithm.run_partial_search` would count).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blockspec import BlockSpec
from repro.core.parameters import GRKSchedule, plan_schedule
from repro.statevector import ops

__all__ = ["BatchResult", "run_partial_search_batch"]


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a batched run over many targets.

    Attributes:
        spec: the shared ``(N, K)`` geometry.
        schedule: the shared integer schedule.
        targets: the target address per batch row, shape ``(B,)``.
        success_probabilities: exact block-measurement success per row.
        block_guesses: argmax block per row.
        queries_per_run: oracle queries each individual run costs.
    """

    spec: BlockSpec
    schedule: GRKSchedule
    targets: np.ndarray
    success_probabilities: np.ndarray
    block_guesses: np.ndarray
    queries_per_run: int

    @property
    def all_correct(self) -> bool:
        """Did every row's most-likely block equal its target's block?"""
        true_blocks = self.targets // self.spec.block_size
        return bool(np.all(self.block_guesses == true_blocks))

    @property
    def worst_success(self) -> float:
        """Minimum success probability across the batch."""
        return float(self.success_probabilities.min())


def _phase_flip_batch(amps: np.ndarray, targets: np.ndarray) -> None:
    """Per-row oracle reflection: row ``i`` flips its own target column."""
    rows = np.arange(amps.shape[0])
    amps[rows, targets] *= -1.0


def run_partial_search_batch(
    n_items: int,
    n_blocks: int,
    targets,
    epsilon: float | None = None,
    *,
    schedule: GRKSchedule | None = None,
) -> BatchResult:
    """Run the GRK algorithm for many targets in one vectorised sweep.

    Args:
        n_items: database size ``N``.
        n_blocks: block count ``K``.
        targets: iterable of target addresses (one independent run each).
        epsilon: Step 1 parameter (``None`` = optimal for this ``K``).
        schedule: pre-planned schedule overriding ``epsilon``.

    Returns:
        :class:`BatchResult` with exact per-target success probabilities.

    This bypasses the counted-oracle interface (batching is an analysis
    tool, not an adversarial execution); its numbers are validated against
    the counted runner in the test suite.
    """
    if schedule is None:
        schedule = plan_schedule(n_items, n_blocks, epsilon)
    spec = schedule.spec
    if spec.n_items != n_items or spec.n_blocks != n_blocks:
        raise ValueError("schedule does not match this instance's (N, K)")
    targets = np.asarray(list(targets), dtype=np.intp)
    if targets.ndim != 1 or targets.size == 0:
        raise ValueError("targets must be a non-empty 1-D collection")
    if targets.min() < 0 or targets.max() >= n_items:
        raise ValueError("targets out of address range")

    b = targets.size
    amps = np.full((b, n_items), 1.0 / np.sqrt(n_items))

    for _ in range(schedule.l1):
        _phase_flip_batch(amps, targets)
        ops.invert_about_mean(amps)
    for _ in range(schedule.l2):
        _phase_flip_batch(amps, targets)
        ops.invert_about_mean_blocks(amps, n_blocks)

    # Step 3, batched: park each row's target amplitude, invert the rest
    # about the full mean, then fold the parked amplitude back into the
    # block distribution.
    rows = np.arange(b)
    parked = amps[rows, targets].copy()
    amps[rows, targets] = 0.0
    ops.invert_about_mean(amps)

    probs = amps.reshape(b, n_blocks, spec.block_size) ** 2
    block_probs = probs.sum(axis=2)
    block_probs[rows, targets // spec.block_size] += parked**2

    true_blocks = targets // spec.block_size
    return BatchResult(
        spec=spec,
        schedule=schedule,
        targets=targets,
        success_probabilities=block_probs[rows, true_blocks].astype(float),
        block_guesses=np.argmax(block_probs, axis=1),
        queries_per_run=schedule.queries,
    )
