"""The GRK partial-search algorithm (Figure 2 of the paper), executable.

Three steps, exactly as published:

1. ``l1`` standard Grover iterations on the full address space, stopping
   ``theta = eps*pi/2`` short of the target.
2. ``l2`` *block-local* Grover iterations ``A_[N/K]``: non-target blocks are
   fixed points; the target block over-rotates past the target so its
   non-target amplitudes turn negative, tuned so the average amplitude over
   all non-target states is half the per-state amplitude in non-target
   blocks.
3. One more query: the bit-flip oracle "moves the target out" into an
   ancilla branch, then an inversion about the (full, uniform) average —
   controlled on the ancilla being 0 — sends every non-target-*block*
   amplitude to (essentially) zero.

Measuring the block register then returns the target's block with
probability ``1 - O(1/sqrt(N))`` (this implementation's integer schedules
actually achieve ``1 - O(1/N)``; see :mod:`repro.core.parameters`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backends import circuit_geometry, validate_backend
from repro.core.blockspec import BlockSpec
from repro.core.parameters import GRKSchedule, plan_schedule
from repro.core.tracing import StageTrace
from repro.kernels import ExecutionPolicy, uniform_state
from repro.oracle.database import Database
from repro.oracle.quantum import BitFlipOracle, PhaseOracle
from repro.statevector import ops
from repro.statevector.measurement import block_probabilities, sample_blocks

__all__ = ["PartialSearchResult", "run_partial_search"]


@dataclass(frozen=True)
class PartialSearchResult:
    """Outcome of one partial-search run.

    Attributes:
        spec: the ``(N, K)`` geometry.
        schedule: the executed integer schedule.
        branches: final state, shape ``(2, N)`` — row ``b`` is the
            ancilla-``b`` branch.
        block_distribution: probabilities of each block under measurement.
        block_guess: the algorithm's output — the most likely block (what a
            single measurement returns with probability ``success_probability``).
        success_probability: probability mass on the true target block.
        queries: oracle queries actually counted during the run.
        traces: stage snapshots when tracing was requested, else ``None``.
    """

    spec: BlockSpec
    schedule: GRKSchedule
    branches: np.ndarray
    block_distribution: np.ndarray
    block_guess: int
    success_probability: float
    queries: int
    traces: tuple[StageTrace, ...] | None = None

    @property
    def failure_probability(self) -> float:
        """Probability of observing a wrong block (clipped at 0: float
        rounding can push a sure-success run's success a few ulp past 1)."""
        return max(0.0, 1.0 - self.success_probability)

    def measure_block(self, rng=None, size=None):
        """Sample the final block measurement (repeatable)."""
        return sample_blocks(self.branches, self.spec.n_blocks, rng=rng, size=size)


def _single_target_of(database: Database) -> int:
    marked = database.reveal_marked()
    if len(marked) != 1:
        raise ValueError(
            f"partial search requires exactly one marked item, got {len(marked)}"
        )
    return next(iter(marked))


def run_partial_search(
    database: Database,
    n_blocks: int,
    epsilon: float | None = None,
    *,
    schedule: GRKSchedule | None = None,
    trace: bool = False,
    backend: str = "kernels",
    policy: ExecutionPolicy | None = None,
) -> PartialSearchResult:
    """Execute the three-step GRK algorithm against a counted oracle.

    Args:
        database: database with exactly one marked address; its counter
            accumulates this run's queries.
        n_blocks: ``K`` (must divide ``N``; any ``K >= 2``, powers of two
            not required).
        epsilon: Step 1 stopping parameter; ``None`` uses the optimal value
            for this ``K``.
        schedule: pre-planned schedule (overrides ``epsilon``); useful for
            ablations with explicit ``(l1, l2)``.
        trace: record stage snapshots (copies the state ~5 times; only the
            ``"kernels"`` backend supports tracing).
        backend: execution engine.  ``"kernels"`` (default) evolves the
            state with the structured :mod:`repro.statevector.ops`
            reflections; ``"naive"`` / ``"compiled"`` build the full
            :func:`~repro.circuits.builders.partial_search_circuit` and run
            it on the registered circuit simulator of that name (which
            requires ``N`` and ``K`` to be powers of two).  All backends
            produce the same result to float precision and charge the same
            ``l1 + l2 + 1`` queries to the database counter.
        policy: :class:`~repro.kernels.ExecutionPolicy` selecting the state
            precision on every backend (``None`` = the bit-identical
            complex128 default; ``row_threads`` has no effect on a single
            run).

    Returns:
        :class:`PartialSearchResult`.  ``success_probability`` is exact (it
        reads the final distribution, it does not sample).
    """
    validate_backend(backend)
    if policy is None:
        policy = ExecutionPolicy()
    n = database.n_items
    if schedule is None:
        schedule = plan_schedule(n, n_blocks, epsilon)
    spec = schedule.spec
    if spec.n_items != n or spec.n_blocks != n_blocks:
        raise ValueError(
            f"schedule is for (N={spec.n_items}, K={spec.n_blocks}), "
            f"but this run has (N={n}, K={n_blocks})"
        )
    target = _single_target_of(database)
    target_block = spec.block_of(target)

    if backend != "kernels":
        if trace:
            raise ValueError("stage tracing requires the 'kernels' backend")
        return _run_on_circuit_backend(
            database, schedule, target, target_block, backend, policy
        )

    oracle = PhaseOracle(database)
    start_count = database.counter.count
    amps = uniform_state(n, dtype=policy.real_dtype)

    traces: list[StageTrace] | None = [] if trace else None

    def record(label: str, description: str, state: np.ndarray) -> None:
        if traces is not None:
            traces.append(
                StageTrace(
                    label=label,
                    description=description,
                    amplitudes=state.copy(),
                    queries=database.counter.count - start_count,
                )
            )

    record("initial", "uniform superposition over all N addresses", amps)

    # Step 1 — global amplification, stopped theta short of the target.
    for _ in range(schedule.l1):
        oracle.apply(amps)
        ops.invert_about_mean(amps)
    record("after_step1", f"{schedule.l1} standard Grover iterations", amps)

    # Step 2 — block-local amplification; target block over-rotates.
    for _ in range(schedule.l2):
        oracle.apply(amps)
        ops.invert_about_mean_blocks(amps, n_blocks)
    record("after_step2", f"{schedule.l2} block-local iterations", amps)

    # Step 3 — one query: move the target into the ancilla-1 branch, then
    # invert the ancilla-0 branch about the full uniform average.
    branches = np.zeros((2, n), dtype=amps.dtype)
    branches[0] = amps
    BitFlipOracle(database).apply(branches)
    record("after_moveout", "bit-flip oracle parks the target in ancilla 1", branches)
    ops.invert_about_mean(branches[0])
    record("final", "controlled inversion about average zeroes non-target blocks", branches)

    queries = database.counter.count - start_count
    dist = block_probabilities(branches, n_blocks)
    return PartialSearchResult(
        spec=spec,
        schedule=schedule,
        branches=branches,
        block_distribution=dist,
        block_guess=int(np.argmax(dist)),
        success_probability=float(dist[target_block]),
        queries=queries,
        traces=tuple(traces) if traces is not None else None,
    )


def _run_on_circuit_backend(
    database: Database,
    schedule: GRKSchedule,
    target: int,
    target_block: int,
    backend: str,
    policy: ExecutionPolicy,
) -> PartialSearchResult:
    """Execute the GRK run as a full gate-level circuit on a named backend.

    The circuit path needs power-of-two geometry (wires are qubits); the
    tagged oracle gates are charged to the database counter so query
    accounting matches the kernel path exactly.
    """
    from repro.circuits import execute, partial_search_circuit

    spec = schedule.spec
    n_address_qubits, n_block_bits = circuit_geometry(spec, backend)
    circuit = partial_search_circuit(
        n_address_qubits, n_block_bits, target, schedule.l1, schedule.l2
    )
    final = execute(circuit, backend=backend, dtype=policy.complex_dtype)
    database.counter.increment(circuit.oracle_queries)
    # The ancilla is the last wire, so index = address * 2 + ancilla; the
    # GRK gate set is real, so the imaginary residue is float noise only.
    branches = np.ascontiguousarray(final.reshape(spec.n_items, 2).T.real)
    dist = block_probabilities(branches, spec.n_blocks)
    return PartialSearchResult(
        spec=spec,
        schedule=schedule,
        branches=branches,
        block_distribution=dist,
        block_guess=int(np.argmax(dist)),
        success_probability=float(dist[target_block]),
        queries=circuit.oracle_queries,
        traces=None,
    )
