"""Stage-by-stage snapshots of a partial-search run (Figures 1, 3–5).

Tracing is opt-in (it copies the state at each stage) and exists so the
benchmark harness can regenerate the paper's amplitude histograms from an
actual run rather than from the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.statevector.measurement import address_probabilities, block_probabilities

__all__ = ["StageTrace"]


@dataclass(frozen=True)
class StageTrace:
    """One recorded stage of a run.

    Attributes:
        label: short machine-friendly stage id (e.g. ``"after_step1"``).
        description: human-readable description of what just happened.
        amplitudes: state snapshot — shape ``(N,)`` before Step 3 or
            ``(2, N)`` once the ancilla branch exists.
        queries: oracle queries spent up to (and including) this stage.
    """

    label: str
    description: str
    amplitudes: np.ndarray
    queries: int

    @property
    def n_items(self) -> int:
        """Address-space size ``N``."""
        return self.amplitudes.shape[-1]

    def address_probabilities(self) -> np.ndarray:
        """``P(x)`` at this stage (ancilla traced out if present)."""
        return address_probabilities(self.amplitudes)

    def block_probabilities(self, n_blocks: int) -> np.ndarray:
        """Block-measurement distribution at this stage."""
        return block_probabilities(self.amplitudes, n_blocks)

    def flat_amplitudes(self) -> np.ndarray:
        """Address amplitudes with any ancilla branches summed.

        Only meaningful for plotting: coherent branches are combined by
        simple addition, which matches Figure 1's single-histogram view
        because at most one branch is nonzero per address in these runs.
        """
        amps = self.amplitudes
        return amps if amps.ndim == 1 else amps.sum(axis=0)
