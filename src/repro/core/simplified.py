"""Korepin–Grover's *Simple Algorithm for Partial Quantum Search*
(quant-ph/0504157), executable with exact query accounting.

The simplified algorithm keeps GRK's Step 1 and Step 2 but replaces the
ancilla-controlled Step 3 with **one ordinary global Grover iteration**:

1. ``j1`` standard Grover iterations on the full address space;
2. ``j2`` block-local iterations (non-target blocks are fixed points; the
   target block over-rotates past the target);
3. one more oracle query followed by a plain inversion about the full
   average — no ancilla, no controlled operation — tuned so the non-target
   blocks' amplitudes cancel;
4. measure the block register.

No extra qubit and no controlled diffusion makes this the easiest partial
search to realise, and the final-step analysis collapses to one affine
update of the three symmetric coordinates (:mod:`repro.core.subspace`).

**Zeroing condition.**  Write the post-Step-2 state as ``(u, v, w)``
(target / rest-of-target-block / outside amplitudes).  The final iteration
flips ``u`` and inverts about the mean ``m``; outside amplitudes vanish
iff ``2m = w``, i.e. exactly

    ``sqrt(b-1)·cos(gamma) - sin(gamma) = (2b - N) w / (2 alpha)``

with ``alpha, gamma`` the target block's polar coordinates and ``b = N/K``.
In the large-``N`` limit this becomes ``cos(gamma) = -(K-2) cos(phi) /
(2 alpha sqrt(K))`` — the same ``(K-2)`` over-rotation structure as GRK's
eq. (4).  Minimising total queries ``j1 + j2 + 1`` over the Step 1 stopping
angle ``phi`` reproduces, for every ``K``, **exactly the optimised GRK
coefficients of the source paper's Section 3.1 table**: the simplified
algorithm is not just simpler, it is asymptotically just as fast.  The
test suite pins that equivalence (``simplified_query_coefficient(K) ==
optimal_epsilon(K).coefficient`` to 1e-6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.blockspec import BlockSpec
from repro.core.subspace import SubspaceCoordinates, SubspaceGRK
from repro.grover.angles import grover_angle
from repro.statevector import ops
from repro.util.validation import require

__all__ = [
    "SimplifiedSchedule",
    "SimplifiedSearchResult",
    "simplified_query_coefficient",
    "simplified_step1_angle",
    "simplified_final_coordinates",
    "plan_simplified_schedule",
    "run_simplified_partial_search",
    "execute_simplified_batch_rows",
]


@dataclass(frozen=True)
class SimplifiedSchedule:
    """A concrete ``(j1, j2)`` schedule for one ``(N, K)`` instance.

    Attributes:
        spec: the block geometry.
        j1: Step 1 (global) iterations.
        j2: Step 2 (block-local) iterations.
        predicted_success: exact block-measurement success probability
            (from the subspace model; target-independent).
    """

    spec: BlockSpec
    j1: int
    j2: int
    predicted_success: float

    @property
    def queries(self) -> int:
        """Total oracle queries: ``j1 + j2 + 1`` (the final iteration's one)."""
        return self.j1 + self.j2 + 1

    @property
    def query_coefficient(self) -> float:
        """``queries / sqrt(N)`` for comparison against the paper tables."""
        return self.queries / math.sqrt(self.spec.n_items)


# --------------------------------------------------------------- asymptotics

@lru_cache(maxsize=None)
def _continuous_optimum(n_blocks: int) -> tuple[float, float]:
    """``(phi*, coefficient)`` minimising the large-N query count.

    ``phi`` is the Step 1 stopping angle ``(2 j1 + 1) beta``; the zeroing
    condition fixes the Step 2 exit angle ``gamma(phi)``, leaving a 1-D
    minimisation of ``phi/2 + (gamma - gamma0) / (2 sqrt(K))``.
    """
    from scipy.optimize import minimize_scalar

    k = n_blocks

    def cost(phi: float) -> float:
        s, c = math.sin(phi), math.cos(phi)
        alpha = math.sqrt(s * s + c * c / k)
        arg = (k - 2) * c / (2.0 * alpha * math.sqrt(k))
        if arg > 1.0:  # infeasible: Step 2 cannot over-rotate far enough
            return 10.0
        gamma = math.acos(-arg)
        gamma0 = math.atan2(s, c / math.sqrt(k))
        return phi / 2.0 + (gamma - gamma0) / (2.0 * math.sqrt(k))

    res = minimize_scalar(
        cost, bounds=(0.0, math.pi / 2.0), method="bounded",
        options={"xatol": 1e-12},
    )
    phi = float(res.x)
    return phi, float(cost(phi))


def simplified_query_coefficient(n_blocks: int) -> float:
    """Asymptotic ``queries / sqrt(N)`` of the simplified algorithm.

    Numerically identical to the source paper's optimised GRK coefficient
    (:func:`repro.core.optimizer.optimal_epsilon`): the simplified final
    iteration saves the ancilla, not queries — and loses none either.
    """
    require(n_blocks >= 2, "n_blocks must be >= 2")
    return _continuous_optimum(n_blocks)[1]


def simplified_step1_angle(n_blocks: int) -> float:
    """The optimal Step 1 stopping angle ``phi*`` (radians)."""
    require(n_blocks >= 2, "n_blocks must be >= 2")
    return _continuous_optimum(n_blocks)[0]


# ------------------------------------------------------------ exact finite N

def simplified_final_coordinates(
    model: SubspaceGRK, j1: int, j2: int
) -> SubspaceCoordinates:
    """Exact post-final-iteration coordinates for ``(j1, j2)``.

    The final iteration is oracle (``u -> -u``) then global inversion about
    the mean — three affine updates of the symmetric coordinates.
    """
    c = model.after_step2(j1, j2)
    spec = model.spec
    b, n = spec.block_size, spec.n_items
    u, v, w = -c.target, c.block_rest, c.outside
    mean = (u + (b - 1) * v + (n - b) * w) / n
    return SubspaceCoordinates(
        target=2.0 * mean - u,
        block_rest=2.0 * mean - v,
        outside=2.0 * mean - w,
    )


def _success(model: SubspaceGRK, j1: int, j2: int) -> float:
    return simplified_final_coordinates(model, j1, j2).target_block_mass(model.spec)


def plan_simplified_schedule(
    n_items: int,
    n_blocks: int,
    *,
    refine: bool = True,
    window: int = 3,
) -> SimplifiedSchedule:
    """Build the integer ``(j1, j2)`` schedule the simulator executes.

    ``j1`` comes from the asymptotic optimum ``phi*``; ``j2`` from the
    *exact* finite-``N`` zeroing condition evaluated at that ``j1``.  With
    ``refine=True`` (recommended) a ``window``-sized neighbourhood is
    scanned with the exact subspace evaluator and the best success wins,
    ties going to the fewest queries — achieving failure ``O(1/sqrt(N))``
    or better, matching the paper's budget.
    """
    spec = BlockSpec(n_items, n_blocks)
    require(spec.block_size >= 2, "block size N/K must be >= 2")
    model = SubspaceGRK(spec)
    b = spec.block_size
    beta = grover_angle(n_items)
    beta_b = grover_angle(b)

    phi_star, _ = _continuous_optimum(n_blocks)
    j1 = max(0, round((phi_star / beta - 1.0) / 2.0))

    def analytic_j2(j1_val: int) -> int:
        c = model.after_step1(j1_val)
        alpha = math.hypot(c.target, c.block_rest * math.sqrt(b - 1))
        gamma0 = math.atan2(c.target, c.block_rest * math.sqrt(b - 1))
        # sqrt(b-1) cos g - sin g = sqrt(b) cos(g + delta), delta = atan(1/sqrt(b-1))
        delta = math.atan2(1.0, math.sqrt(b - 1))
        arg = (2 * b - n_items) * c.outside / (2.0 * alpha * math.sqrt(b))
        gamma = math.acos(max(-1.0, min(1.0, arg))) - delta
        return max(0, round((gamma - gamma0) / (2.0 * beta_b)))

    j2 = analytic_j2(j1)
    if not refine:
        return SimplifiedSchedule(
            spec=spec, j1=j1, j2=j2, predicted_success=_success(model, j1, j2)
        )

    best: tuple[float, int, int] | None = None
    for a in range(max(0, j1 - window), j1 + window + 1):
        j2_a = analytic_j2(a)
        for bb in range(max(0, j2_a - window), j2_a + window + 1):
            s = _success(model, a, bb)
            if (
                best is None
                or s > best[0] + 1e-9
                or (abs(s - best[0]) <= 1e-9 and a + bb < best[1] + best[2])
            ):
                best = (s, a, bb)
    s, j1, j2 = best
    return SimplifiedSchedule(spec=spec, j1=j1, j2=j2, predicted_success=s)


# ---------------------------------------------------------------- execution

@dataclass(frozen=True)
class SimplifiedSearchResult:
    """Outcome of one simplified-partial-search run.

    Attributes:
        spec: the ``(N, K)`` geometry.
        schedule: the executed ``(j1, j2)`` schedule.
        amplitudes: final state, shape ``(N,)`` (no ancilla in this
            algorithm — that is the point).
        block_distribution: block-measurement probabilities, shape ``(K,)``.
        block_guess: the most likely block.
        success_probability: probability mass on the true target block.
        queries: oracle queries actually counted during the run.
    """

    spec: BlockSpec
    schedule: SimplifiedSchedule
    amplitudes: np.ndarray
    block_distribution: np.ndarray
    block_guess: int
    success_probability: float
    queries: int

    @property
    def failure_probability(self) -> float:
        return max(0.0, 1.0 - self.success_probability)


def run_simplified_partial_search(
    database,
    n_blocks: int,
    *,
    schedule: SimplifiedSchedule | None = None,
    policy=None,
) -> SimplifiedSearchResult:
    """Execute the Korepin–Grover simplified algorithm on a counted oracle.

    Args:
        database: database with exactly one marked address; its counter
            accumulates this run's ``j1 + j2 + 1`` queries.
        n_blocks: ``K`` (must divide ``N``; powers of two not required).
        schedule: pre-planned schedule (default: the planned optimum).
        policy: :class:`~repro.kernels.ExecutionPolicy` selecting the state
            precision (``None`` = the bit-identical complex128 default).

    Returns:
        :class:`SimplifiedSearchResult` with the exact final distribution.
    """
    from repro.kernels import ExecutionPolicy, uniform_state
    from repro.oracle.quantum import PhaseOracle

    if policy is None:
        policy = ExecutionPolicy()
    n = database.n_items
    if schedule is None:
        schedule = plan_simplified_schedule(n, n_blocks)
    spec = schedule.spec
    if spec.n_items != n or spec.n_blocks != n_blocks:
        raise ValueError(
            f"schedule is for (N={spec.n_items}, K={spec.n_blocks}), "
            f"but this run has (N={n}, K={n_blocks})"
        )
    marked = database.reveal_marked()
    if len(marked) != 1:
        raise ValueError(
            f"partial search requires exactly one marked item, got {len(marked)}"
        )
    target = next(iter(marked))
    target_block = spec.block_of(target)

    oracle = PhaseOracle(database)
    start_count = database.counter.count
    amps = uniform_state(n, dtype=policy.real_dtype)
    for _ in range(schedule.j1):
        oracle.apply(amps)
        ops.invert_about_mean(amps)
    for _ in range(schedule.j2):
        oracle.apply(amps)
        ops.invert_about_mean_blocks(amps, n_blocks)
    oracle.apply(amps)
    ops.invert_about_mean(amps)

    dist = (amps.reshape(n_blocks, spec.block_size) ** 2).sum(axis=1)
    return SimplifiedSearchResult(
        spec=spec,
        schedule=schedule,
        amplitudes=amps,
        block_distribution=dist,
        block_guess=int(np.argmax(dist)),
        success_probability=float(dist[target_block]),
        queries=database.counter.count - start_count,
    )


def execute_simplified_batch_rows(
    schedule: SimplifiedSchedule,
    targets: np.ndarray,
    policy=None,
) -> tuple[np.ndarray, np.ndarray]:
    """One memory-resident ``(B_chunk, N)`` simplified-algorithm sweep.

    The shard primitive for the engine's batched ``grk-simplified`` path
    (kernels backend): rows evolve independently, so concatenating chunk
    outputs is bit-identical to one unsharded call.  Composed entirely of
    :mod:`repro.kernels` calls; *policy* (dtype + row threads) follows the
    same contract as :func:`repro.core.batch.execute_batch_rows`.
    """
    from repro import kernels
    from repro.kernels import ExecutionPolicy

    if policy is None:
        policy = ExecutionPolicy()
    spec = schedule.spec
    n_items = spec.n_items
    targets = np.asarray(targets, dtype=np.intp)
    b = targets.size
    dtype = policy.real_dtype
    kernel_backend = kernels.resolve_kernel_backend(policy.backend)
    amps = kernels.uniform_batch(b, n_items, dtype=dtype)

    def sweep(sl: slice) -> tuple[np.ndarray, np.ndarray]:
        return kernel_backend.simplified_sweep_rows(
            schedule, amps[sl], targets[sl]
        )

    return kernels.sweep_row_slabs(
        sweep, b, policy.threads_for_slab(b, n_items)
    )
