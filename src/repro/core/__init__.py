"""The paper's primary contribution: quantum *partial* search.

Given a database of ``N`` items with a unique marked address and a partition
into ``K`` equal blocks, return the block containing the target (its "first
k bits") with ``(pi/4)(1 - Theta(1/sqrt(K))) sqrt(N)`` queries — strictly
fewer than full search, by more than any classical saving.

Public surface:

- :class:`~repro.core.blockspec.BlockSpec` — the ``(N, K)`` partition.
- :class:`~repro.core.parameters.GRKParameters` /
  :func:`~repro.core.parameters.plan_schedule` — the paper's Section 3
  quantities (``theta``, ``alpha_yt``, ``theta1``, ``theta2``, ``l1``,
  ``l2``) and exact integer schedules.
- :func:`~repro.core.algorithm.run_partial_search` — the three-step GRK
  algorithm on the state-vector simulator, with optional stage tracing.
- :class:`~repro.core.subspace.SubspaceGRK` — exact O(1) evolution of the
  3-dimensional invariant subspace, for arbitrarily large ``N``.
- :func:`~repro.core.sure_success.run_sure_success_partial_search` — the
  "with certainty" variant (failure ~ machine epsilon, constant extra
  queries).
- :func:`~repro.core.simplified.run_simplified_partial_search` —
  Korepin–Grover's ancilla-free simplification (quant-ph/0504157), whose
  optimised asymptotic query coefficient exactly matches the Section 3.1
  table.
- :func:`~repro.core.naive.run_naive_partial_search` — Section 1.2's
  search-K−1-blocks baseline.
- :func:`~repro.core.iterated.run_iterated_full_search` — Theorem 2's
  reduction of full search to repeated partial search.
- :func:`~repro.core.optimizer.optimal_epsilon` /
  :func:`~repro.core.optimizer.coefficient_table` — the Section 3.1 table.
"""

from repro.core.blockspec import BlockSpec
from repro.core.parameters import GRKParameters, GRKSchedule, plan_schedule
from repro.core.algorithm import PartialSearchResult, run_partial_search
from repro.core.batch import BatchResult, run_partial_search_batch
from repro.core.simplified import (
    SimplifiedSchedule,
    SimplifiedSearchResult,
    plan_simplified_schedule,
    run_simplified_partial_search,
    simplified_query_coefficient,
)
from repro.core.subspace import SubspaceGRK, SubspaceCoordinates
from repro.core.naive import NaivePartialSearchResult, run_naive_partial_search
from repro.core.iterated import IteratedSearchResult, run_iterated_full_search
from repro.core.sure_success import run_sure_success_partial_search
from repro.core.optimizer import (
    coefficient_table,
    normalized_query_coefficient,
    optimal_epsilon,
)

__all__ = [
    "BlockSpec",
    "GRKParameters",
    "GRKSchedule",
    "plan_schedule",
    "PartialSearchResult",
    "run_partial_search",
    "BatchResult",
    "run_partial_search_batch",
    "SubspaceGRK",
    "SubspaceCoordinates",
    "NaivePartialSearchResult",
    "run_naive_partial_search",
    "IteratedSearchResult",
    "run_iterated_full_search",
    "run_sure_success_partial_search",
    "SimplifiedSchedule",
    "SimplifiedSearchResult",
    "plan_simplified_schedule",
    "run_simplified_partial_search",
    "simplified_query_coefficient",
    "coefficient_table",
    "normalized_query_coefficient",
    "optimal_epsilon",
]
