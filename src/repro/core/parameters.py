"""Section 3 quantities and integer schedules for the GRK algorithm.

Two layers live here, kept deliberately separate:

1. :class:`GRKParameters` — the **paper's asymptotic formulas** (equations
   (1)–(4) and the Step 1/2 iteration counts) as functions of
   ``(K, epsilon)`` alone, exactly as used in the Section 3.1 optimisation
   table.  ``N`` enters only through the overall ``sqrt(N)`` scaling.
2. :class:`GRKSchedule` / :func:`plan_schedule` — the **exact finite-N
   integer schedule** actually executed by the simulator: ``l1`` standard
   iterations, ``l2`` block-local iterations, one Step 3 query.  ``l2`` is
   chosen by exact zeroing analysis (via :mod:`repro.core.subspace`), which
   is how the runner achieves failure ``O(1/N)`` — comfortably inside the
   paper's ``O(1/sqrt(N))`` budget.

Angle conventions (single target):

- ``theta = eps * pi/2`` — angle *remaining to the target* after Step 1.
- ``alpha_yt = sqrt(1 - ((K-1)/K) sin^2 theta)`` — eq. (2).
- ``theta1 = arcsin(sin theta / (alpha_yt sqrt(K)))`` — eq. (3).
- ``theta2 = arcsin((K-2) sin theta / (2 alpha_yt sqrt(K)))`` — eq. (4).
- normalised query count ``q(eps, K) = (pi/4)(1-eps) + (theta1+theta2)/(2 sqrt(K))``
  (in units of ``sqrt(N)``; Step 3 adds one exact query on top).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.blockspec import BlockSpec
from repro.grover.angles import grover_angle, iterations_for_angle
from repro.util.validation import require

__all__ = [
    "GRKParameters",
    "GRKSchedule",
    "max_feasible_epsilon",
    "plan_schedule",
]

_CLIP = 1.0 + 1e-12  # tolerate float spill just past the arcsin domain edge


def _safe_arcsin(x: float) -> float:
    if x > _CLIP or x < -_CLIP:
        raise ValueError(f"arcsin argument {x} outside [-1, 1]: infeasible epsilon")
    return math.asin(max(-1.0, min(1.0, x)))


def max_feasible_epsilon(n_blocks: int) -> float:
    """Largest ``eps`` for which eq. (4)'s arcsin argument stays <= 1.

    Setting ``(K-2) s = 2 alpha sqrt(K)`` with ``alpha^2 = 1 - (K-1)s^2/K``
    gives ``s^2 ((K-2)^2 + 4(K-1)) = 4K``; the bracket is exactly ``K^2``,
    so the boundary is ``sin(theta) = 2/sqrt(K)``.  For ``K <= 4`` that
    exceeds 1, i.e. every ``eps`` in [0, 1] is feasible (the boundary is
    attained exactly at ``K = 4``, ``eps = 1``); for larger ``K`` the Step 2
    over-rotation demanded by the zeroing condition caps the usable range.
    """
    require(n_blocks >= 2, "n_blocks must be >= 2")
    s = 2.0 / math.sqrt(n_blocks)
    if s >= 1.0:
        return 1.0
    return 2.0 * math.asin(s) / math.pi  # theta = arcsin(s), eps = theta/(pi/2)


@dataclass(frozen=True)
class GRKParameters:
    """The paper's asymptotic Step 1/2 geometry for given ``(K, eps)``.

    All angles are exact functions of ``(K, eps)``; iteration counts are the
    paper's real-valued expressions (normalised by ``sqrt(N)``).
    """

    n_blocks: int
    epsilon: float

    def __post_init__(self):
        require(self.n_blocks >= 2, "n_blocks must be >= 2")
        require(0.0 <= self.epsilon <= 1.0, "epsilon must lie in [0, 1]")

    # ------------------------------------------------------------ geometry
    @property
    def theta(self) -> float:
        """Angle left to the target after Step 1: ``eps * pi/2``."""
        return self.epsilon * math.pi / 2.0

    @property
    def sin_theta(self) -> float:
        """``sin(theta)`` — per-address non-target amplitude is ``sin(theta)/sqrt(N)``."""
        return math.sin(self.theta)

    @property
    def alpha_target_block(self) -> float:
        """Eq. (2): total amplitude of the target block after Step 1."""
        k = self.n_blocks
        return math.sqrt(1.0 - ((k - 1) / k) * self.sin_theta**2)

    @property
    def theta1(self) -> float:
        """Eq. (3): initial angle between the target-block state and the target."""
        k = self.n_blocks
        return _safe_arcsin(self.sin_theta / (self.alpha_target_block * math.sqrt(k)))

    @property
    def theta2(self) -> float:
        """Eq. (4): over-rotation past the target required for Step 3 zeroing."""
        k = self.n_blocks
        return _safe_arcsin(
            (k - 2) * self.sin_theta / (2.0 * self.alpha_target_block * math.sqrt(k))
        )

    # ------------------------------------------------- normalised iteration counts
    @property
    def l1_coefficient(self) -> float:
        """Step 1 iterations / sqrt(N): ``(pi/4)(1 - eps)``."""
        return (math.pi / 4.0) * (1.0 - self.epsilon)

    @property
    def l2_coefficient(self) -> float:
        """Step 2 iterations / sqrt(N): ``(theta1 + theta2) / (2 sqrt(K))``."""
        return (self.theta1 + self.theta2) / (2.0 * math.sqrt(self.n_blocks))

    @property
    def query_coefficient(self) -> float:
        """Total (Steps 1+2) queries / sqrt(N) — the table's "upper bound"."""
        return self.l1_coefficient + self.l2_coefficient

    @property
    def savings_coefficient(self) -> float:
        """``c_K`` such that queries = ``(pi/4)(1 - c_K) sqrt(N)``."""
        return 1.0 - self.query_coefficient / (math.pi / 4.0)

    # --------------------------------------------------------- finite-N counts
    def l1(self, n_items: int) -> int:
        """Integer Step 1 count: the most standard iterations that still stop
        at least ``theta`` short of the target (exact-angle arithmetic, not
        a rounding of ``(pi/4)(1-eps) sqrt(N)``)."""
        return iterations_for_angle(n_items, self.theta)

    def l2(self, n_items: int) -> int:
        """Integer Step 2 count from the paper's real-valued expression
        ``(sqrt(N/K)/2)(theta1 + theta2)`` (rounded to nearest).

        :func:`plan_schedule` refines this via exact zeroing analysis; this
        method is the paper-literal value used for comparison.
        """
        b = n_items / self.n_blocks
        return max(0, round(math.sqrt(b) / 2.0 * (self.theta1 + self.theta2)))


@dataclass(frozen=True)
class GRKSchedule:
    """A concrete executable schedule for one ``(N, K)`` instance.

    Attributes:
        spec: the block geometry.
        epsilon: the nominal Step 1 stopping parameter.
        l1: integer Step 1 (global) iterations.
        l2: integer Step 2 (block-local) iterations.
        predicted_success: exact block-measurement success probability this
            schedule attains (from the subspace model; target-independent).
    """

    spec: BlockSpec
    epsilon: float
    l1: int
    l2: int
    predicted_success: float

    @property
    def queries(self) -> int:
        """Total oracle queries: ``l1 + l2 + 1`` (Step 3 costs one)."""
        return self.l1 + self.l2 + 1

    @property
    def query_coefficient(self) -> float:
        """``queries / sqrt(N)`` for comparison against the paper's table."""
        return self.queries / math.sqrt(self.spec.n_items)


def plan_schedule(
    n_items: int,
    n_blocks: int,
    epsilon: float | None = None,
    *,
    refine_l2: bool = True,
    l2_window: int = 1,
) -> GRKSchedule:
    """Build the integer schedule the simulator executes.

    Args:
        n_items: database size ``N`` (``K`` must divide it).
        n_blocks: number of blocks ``K``.
        epsilon: Step 1 stopping parameter; default = the optimal value for
            this ``K`` from :func:`repro.core.optimizer.optimal_epsilon`
            (clipped to the feasible domain).
        refine_l2: scan ``l2`` candidates around the analytic value and keep
            the one with the best exact success probability (recommended —
            costs O(window) subspace evaluations, each O(1)).
        l2_window: half-width of the scan around the analytic ``l2``.  The
            default ±1 corrects integer rounding only; larger windows can
            "win" by spending a further half-revolution of Step 2 for a
            marginally better second approach — more queries for O(1/N)
            success, the wrong trade at every realistic size.

    Returns:
        :class:`GRKSchedule` with the exact predicted success probability.
    """
    from repro.core.optimizer import optimal_epsilon  # deferred: avoids cycle
    from repro.core.subspace import SubspaceGRK

    spec = BlockSpec(n_items, n_blocks)
    if epsilon is None:
        epsilon = optimal_epsilon(n_blocks).epsilon
    require(0.0 <= epsilon <= 1.0, "epsilon must lie in [0, 1]")
    params = GRKParameters(n_blocks, epsilon)
    l1 = params.l1(n_items)

    model = SubspaceGRK(spec)
    try:
        l2_analytic = params.l2(n_items)
    except ValueError:
        # eq. (4) infeasible at this epsilon: fall back to scanning from the
        # pure rotation-to-target count.
        beta_b = grover_angle(spec.block_size)
        l2_analytic = max(0, round((math.pi / 2) / (2 * beta_b)))

    if not refine_l2:
        l2 = l2_analytic
        success = model.success_probability(l1, l2)
    else:
        candidates = sorted(
            {max(0, l2_analytic + d) for d in range(-l2_window, l2_window + 1)}
        )
        scores = {c: model.success_probability(l1, c) for c in candidates}
        best = max(scores.values())
        # Ties within float noise go to the cheapest schedule: an extra
        # full rotation (l2 + ~pi/beta_b) reproduces the same success up to
        # 1e-16 and must not win on that noise.
        l2 = min(c for c, s in scores.items() if s >= best - 1e-9)
        success = scores[l2]
    return GRKSchedule(
        spec=spec, epsilon=epsilon, l1=l1, l2=l2, predicted_success=success
    )
