"""Partial search "with certainty": the paper's sure-success modification.

Theorem 1 notes the algorithm "can be modified to give the correct answer
with certainty while increasing the number of queries by at most a
constant".  This module realises that remark the same way Long's
zero-failure full search does (reference [6]): replace the final reflections
by *phased* reflections whose two continuous phases per iteration supply the
freedom that integer iteration counts lack.

Construction:

- run Step 1 unchanged (``l1`` standard iterations);
- run ``l2 - 1`` standard Step 2 iterations, then **two phased** block
  iterations ``D_block(phi_d) · O(phi_o)`` — four free phases in total;
- run Step 3 unchanged.

Step 3 zeroes the non-target blocks iff the (now complex) per-address
outside amplitude satisfies ``w_final = 2*S/N - w = 0`` — two real
constraints, met exactly by solving for the four phases.  Crucially the
constraints involve only the *symmetric subspace coordinates*, which do not
depend on which address is marked, so the phases are solved **offline** on
the analytic model (:mod:`repro.core.subspace` generalised to complex
coordinates below) at zero oracle cost, then the real oracle run spends
``l1 + (l2-1) + 2 + 1`` queries — one more than the plain schedule.
"""

from __future__ import annotations

import cmath
from dataclasses import dataclass

import numpy as np

from repro.core.algorithm import PartialSearchResult, _single_target_of
from repro.core.blockspec import BlockSpec
from repro.core.parameters import GRKSchedule, plan_schedule
from repro.core.subspace import SubspaceGRK
from repro.grover.amplify import solve_phases
from repro.oracle.database import Database
from repro.oracle.quantum import BitFlipOracle, PhaseOracle
from repro.statevector import ops
from repro.statevector.measurement import block_probabilities

__all__ = ["SureSuccessPlan", "plan_sure_success", "run_sure_success_partial_search"]


@dataclass(frozen=True)
class SureSuccessPlan:
    """A solved sure-success schedule (target-independent).

    Attributes:
        spec: the ``(N, K)`` geometry.
        l1: standard Step 1 iterations.
        l2_base: standard Step 2 iterations before the phased tail.
        phases: flat tuple ``(phi_o1, phi_d1, phi_o2, phi_d2, ...)`` for the
            phased tail iterations.
        predicted_failure: exact residual failure probability of the plan
            (machine-precision scale).
    """

    spec: BlockSpec
    l1: int
    l2_base: int
    phases: tuple[float, ...]
    predicted_failure: float

    @property
    def queries(self) -> int:
        """Total oracle queries: ``l1 + l2_base + len(phases)/2 + 1``."""
        return self.l1 + self.l2_base + len(self.phases) // 2 + 1


def _tail_outside_amplitude(
    spec: BlockSpec, start, phases: np.ndarray
) -> complex:
    """Complex subspace evolution of the phased tail + Step 3.

    ``start`` is the (real) symmetric coordinates entering the tail; returns
    the final per-address amplitude in non-target blocks, whose vanishing is
    the sure-success condition.
    """
    b, n = spec.block_size, spec.n_items
    u = complex(start.target)
    v = complex(start.block_rest)
    w = complex(start.outside)
    for i in range(0, len(phases), 2):
        phi_o, phi_d = phases[i], phases[i + 1]
        u *= cmath.exp(1j * phi_o)  # phased oracle
        f = 1.0 - cmath.exp(1j * phi_d)  # phased block diffusion
        mean_b = (u + (b - 1) * v) / b
        u, v = f * mean_b - u, f * mean_b - v
        w *= -cmath.exp(1j * phi_d)  # uniform non-target blocks: eigenvalue
    # Step 3: target parked in ancilla-1, controlled global diffusion.
    mean = ((b - 1) * v + (n - b) * w) / n
    return 2.0 * mean - w


def plan_sure_success(
    n_items: int,
    n_blocks: int,
    epsilon: float | None = None,
    *,
    n_phased: int = 2,
    tolerance: float = 1e-11,
) -> SureSuccessPlan:
    """Solve the phased tail for a given instance geometry.

    Escalates from ``n_phased`` to ``n_phased + 1`` tail iterations if the
    solver cannot reach ``tolerance`` (rare; logged in the raised error
    otherwise).
    """
    base = plan_schedule(n_items, n_blocks, epsilon)
    spec = base.spec
    if spec.block_size < 2:
        raise ValueError("sure-success needs block_size >= 2 (K < N)")
    model = SubspaceGRK(spec)

    last_error: Exception | None = None
    for extra in (0, 1):
        tail_len = n_phased + extra
        l2_base = max(base.l2 - (tail_len - 1), 0)
        start = model.after_step2(base.l1, l2_base)
        scale = np.sqrt(spec.n_items - spec.block_size)

        def residual(phases: np.ndarray) -> np.ndarray:
            w_final = _tail_outside_amplitude(spec, start, phases)
            return np.array([w_final.real, w_final.imag]) * scale

        try:
            phases = solve_phases(residual, 2 * tail_len, tolerance=tolerance)
        except RuntimeError as exc:  # try a longer tail
            last_error = exc
            continue
        failure = float(np.sum(residual(phases) ** 2))
        return SureSuccessPlan(
            spec=spec,
            l1=base.l1,
            l2_base=l2_base,
            phases=tuple(float(p) for p in phases),
            predicted_failure=failure,
        )
    raise RuntimeError(
        f"could not solve sure-success phases for N={n_items}, K={n_blocks}: {last_error}"
    )


def run_sure_success_partial_search(
    database: Database,
    n_blocks: int,
    epsilon: float | None = None,
    *,
    plan: SureSuccessPlan | None = None,
    trace: bool = False,
    policy=None,
) -> PartialSearchResult:
    """Run the sure-success variant against a counted oracle.

    The returned result's ``success_probability`` is 1 up to ~1e-12 (see the
    plan's ``predicted_failure``).  Accepts a pre-solved ``plan`` so batches
    over many targets pay the (classical) phase solve once.  *policy*
    selects the complex state precision (``None`` = complex128; at
    complex64 the certainty residue grows to the float32 scale, inside the
    documented :data:`repro.kernels.COMPLEX64_SUCCESS_ATOL`).
    """
    from repro.kernels import ExecutionPolicy, uniform_state

    if policy is None:
        policy = ExecutionPolicy()
    n = database.n_items
    if plan is None:
        plan = plan_sure_success(n, n_blocks, epsilon)
    spec = plan.spec
    if spec.n_items != n or spec.n_blocks != n_blocks:
        raise ValueError("plan does not match this instance's (N, K)")
    target = _single_target_of(database)
    target_block = spec.block_of(target)

    oracle = PhaseOracle(database)
    start_count = database.counter.count
    amps = uniform_state(n, dtype=policy.complex_dtype)

    for _ in range(plan.l1):
        oracle.apply(amps)
        ops.invert_about_mean(amps)
    for _ in range(plan.l2_base):
        oracle.apply(amps)
        ops.invert_about_mean_blocks(amps, n_blocks)
    for i in range(0, len(plan.phases), 2):
        oracle.apply(amps, phase=plan.phases[i])
        ops.invert_about_mean_blocks(amps, n_blocks, phase=plan.phases[i + 1])

    branches = np.zeros((2, n), dtype=amps.dtype)
    branches[0] = amps
    BitFlipOracle(database).apply(branches)
    ops.invert_about_mean(branches[0])

    queries = database.counter.count - start_count
    dist = block_probabilities(branches, n_blocks)
    schedule = GRKSchedule(
        spec=spec,
        epsilon=epsilon if epsilon is not None else float("nan"),
        l1=plan.l1,
        l2=plan.l2_base + len(plan.phases) // 2,
        predicted_success=1.0 - plan.predicted_failure,
    )
    return PartialSearchResult(
        spec=spec,
        schedule=schedule,
        branches=branches,
        block_distribution=dist,
        block_guess=int(np.argmax(dist)),
        success_probability=float(dist[target_block]),
        queries=queries,
        traces=None,
    )
