"""Optimal choice of ``epsilon`` — the paper's Section 3.1 "computer program".

The paper could not find a closed form for the optimal stopping parameter
and tabulated machine-optimised values for small ``K``.  This module is that
program: it minimises the normalised query count

    ``q(eps, K) = (pi/4)(1 - eps) + (theta1(eps) + theta2(eps)) / (2 sqrt(K))``

over the feasible ``eps`` range (eq. (4) caps it at ``sin(theta) = 2/sqrt(K)``
for ``K > 4``; see :func:`repro.core.parameters.max_feasible_epsilon`).
Boundary minima are real — for ``K = 2`` the optimum is exactly ``eps = 1``
(skip Step 1 entirely and search both halves locally) — so endpoints are
compared explicitly rather than trusting the interior search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from scipy import optimize

from repro.core.parameters import GRKParameters, max_feasible_epsilon
from repro.lowerbounds.partial import lower_bound_coefficient

__all__ = [
    "OptimalEpsilon",
    "normalized_query_coefficient",
    "optimal_epsilon",
    "coefficient_table",
    "TABLE_K_VALUES",
]

#: The K values in the paper's Section 3.1 table, in order.
TABLE_K_VALUES = (2, 3, 4, 5, 8, 32)


def normalized_query_coefficient(epsilon: float, n_blocks: int) -> float:
    """``q(eps, K)`` — Steps 1+2 queries in units of ``sqrt(N)``.

    Raises ``ValueError`` outside the feasible ``eps`` domain.
    """
    return GRKParameters(n_blocks, epsilon).query_coefficient


@dataclass(frozen=True)
class OptimalEpsilon:
    """Result of the one-dimensional optimisation for a given ``K``.

    Attributes:
        n_blocks: ``K``.
        epsilon: minimiser ``eps*``.
        coefficient: minimal ``q(eps*, K)`` (the table's "Upper bound" entry,
            in units of ``sqrt(N)``).
        savings: ``c_K`` with ``q = (pi/4)(1 - c_K)``.
    """

    n_blocks: int
    epsilon: float
    coefficient: float
    savings: float


@lru_cache(maxsize=None)
def optimal_epsilon(n_blocks: int) -> OptimalEpsilon:
    """Minimise ``q(eps, K)`` over the feasible domain (cached per ``K``)."""
    if n_blocks < 2:
        raise ValueError("n_blocks must be >= 2")
    hi = max_feasible_epsilon(n_blocks)

    def objective(eps: float) -> float:
        return normalized_query_coefficient(min(max(eps, 0.0), hi), n_blocks)

    result = optimize.minimize_scalar(
        objective, bounds=(0.0, hi), method="bounded", options={"xatol": 1e-12}
    )
    candidates = [(objective(0.0), 0.0), (objective(hi), hi)]
    if result.success:
        candidates.append((float(result.fun), float(result.x)))
    best_value, best_eps = min(candidates)
    return OptimalEpsilon(
        n_blocks=n_blocks,
        epsilon=best_eps,
        coefficient=best_value,
        savings=1.0 - best_value / (math.pi / 4.0),
    )


def coefficient_table(k_values=TABLE_K_VALUES) -> list[dict]:
    """Rows of the Section 3.1 table (plus the full-search reference row).

    Each row is a dict with keys ``label``, ``n_blocks``, ``epsilon``,
    ``upper`` (optimised ``q``), ``lower`` (Theorem 2 coefficient).  The
    first row is the database-search reference with both bounds at
    ``pi/4 ~ 0.785`` (Grover's algorithm is exactly optimal there).
    """
    rows = [
        {
            "label": "Database search",
            "n_blocks": None,
            "epsilon": 0.0,
            "upper": math.pi / 4.0,
            "lower": math.pi / 4.0,
        }
    ]
    for k in k_values:
        opt = optimal_epsilon(k)
        rows.append(
            {
                "label": f"K={k}",
                "n_blocks": k,
                "epsilon": opt.epsilon,
                "upper": opt.coefficient,
                "lower": lower_bound_coefficient(k),
            }
        )
    return rows
