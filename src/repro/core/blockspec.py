"""The ``(N, K)`` block partition of the address space.

The paper partitions ``[N]`` into ``K`` equal *contiguous* blocks; when both
are powers of two a block index is literally the first ``k = log2(K)`` bits
of the ``n = log2(N)``-bit address.  ``BlockSpec`` centralises that
arithmetic so algorithms, oracles and analysis all agree on the layout.
``K`` need not be a power of two (the paper's own 12-item example uses
``K = 3``), only ``K | N``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.bits import block_slice, ilog2, is_power_of_two, join_address, split_address
from repro.util.validation import require, require_divides

__all__ = ["BlockSpec"]


@dataclass(frozen=True)
class BlockSpec:
    """An immutable description of the partial-search instance geometry.

    Attributes:
        n_items: database size ``N``.
        n_blocks: number of equal blocks ``K`` (must divide ``N``; ``K >= 2``
            — with one block there is nothing to search).
    """

    n_items: int
    n_blocks: int

    def __post_init__(self):
        require(self.n_items >= 2, f"n_items={self.n_items} must be >= 2")
        require(self.n_blocks >= 2, f"n_blocks={self.n_blocks} must be >= 2")
        require_divides("n_blocks", self.n_blocks, "n_items", self.n_items)
        require(
            self.n_blocks <= self.n_items,
            f"n_blocks={self.n_blocks} cannot exceed n_items={self.n_items}",
        )

    # ------------------------------------------------------------- geometry
    @property
    def block_size(self) -> int:
        """Addresses per block, ``N/K`` (the paper's block dimension)."""
        return self.n_items // self.n_blocks

    @property
    def address_bits(self) -> int:
        """``n = log2(N)`` (requires ``N`` a power of two)."""
        return ilog2(self.n_items)

    @property
    def block_bits(self) -> int:
        """``k = log2(K)`` — how many leading address bits partial search
        returns (requires ``K`` a power of two)."""
        return ilog2(self.n_blocks)

    @property
    def is_dyadic(self) -> bool:
        """True when both ``N`` and ``K`` are powers of two (the paper's
        ``{0,1}^n`` framing; non-dyadic instances are still valid)."""
        return is_power_of_two(self.n_items) and is_power_of_two(self.n_blocks)

    # ----------------------------------------------------------- addressing
    def block_of(self, address: int) -> int:
        """Block index ``y`` containing *address*."""
        return split_address(address, self.n_items, self.n_blocks)[0]

    def split(self, address: int) -> tuple[int, int]:
        """``(y, z)`` — block index and offset inside the block."""
        return split_address(address, self.n_items, self.n_blocks)

    def join(self, y: int, z: int) -> int:
        """Address with block index ``y`` and in-block offset ``z``."""
        return join_address(y, z, self.n_items, self.n_blocks)

    def slice_of(self, y: int) -> slice:
        """Contiguous address slice of block ``y``."""
        return block_slice(y, self.n_items, self.n_blocks)

    def addresses_of(self, y: int) -> range:
        """The addresses in block ``y`` as a ``range``."""
        s = self.slice_of(y)
        return range(s.start, s.stop)

    def mask_of(self, blocks) -> np.ndarray:
        """Boolean mask over addresses selecting the given block indices.

        Used by the naive baseline to restrict search to K−1 chosen blocks.
        """
        mask = np.zeros(self.n_items, dtype=bool)
        for y in blocks:
            mask[self.slice_of(int(y))] = True
        return mask

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockSpec(N={self.n_items}, K={self.n_blocks}, block={self.block_size})"
