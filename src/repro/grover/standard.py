"""The standard quantum database-search algorithm on the simulator.

This is the paper's reference point: ``(pi/4) sqrt(N)`` queries, success
probability ``1 - O(1/N)`` (Grover 1996; optimal by Zalka 1999).  The runner
takes a *counted oracle* — the returned query total comes from the oracle's
counter, not from trusting the loop bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grover.angles import optimal_iterations
from repro.oracle.database import SingleTargetDatabase
from repro.oracle.quantum import PhaseOracle
from repro.statevector import ops
from repro.statevector.measurement import address_probabilities

__all__ = ["GroverResult", "run_grover"]


@dataclass(frozen=True)
class GroverResult:
    """Outcome of a full database-search run.

    Attributes:
        amplitudes: final state vector over the ``N`` addresses.
        iterations: Grover iterations performed.
        queries: oracle queries spent (== iterations for the standard run).
        success_probability: probability that measuring yields a marked
            address.
        best_guess: most probable address — what the algorithm would output.
    """

    amplitudes: np.ndarray
    iterations: int
    queries: int
    success_probability: float
    best_guess: int

    def measure(self, rng=None, size=None):
        """Sample the address measurement (repeatable; does not collapse)."""
        from repro.statevector.measurement import sample_addresses

        return sample_addresses(self.amplitudes, rng=rng, size=size)


def run_grover(
    database: SingleTargetDatabase,
    iterations: int | None = None,
    *,
    initial: np.ndarray | None = None,
) -> GroverResult:
    """Run standard Grover search against a counted database oracle.

    Args:
        database: single-target database; its counter accumulates queries.
        iterations: number of ``A = I_0 I_t`` applications.  Default: the
            optimal ``floor((pi/4)/beta)``.
        initial: optional starting state (defaults to the uniform
            superposition).  Copied, never mutated.

    Returns:
        :class:`GroverResult` with the final state and exact accounting.
    """
    n = database.n_items
    if iterations is None:
        iterations = optimal_iterations(n, len(database.reveal_marked()))
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    if initial is None:
        amps = np.full(n, 1.0 / np.sqrt(n))
    else:
        amps = np.array(initial, dtype=np.result_type(initial, np.float64))
        if amps.shape != (n,):
            raise ValueError(f"initial state must have shape ({n},)")

    oracle = PhaseOracle(database)
    before = database.counter.count
    for _ in range(iterations):
        oracle.apply(amps)
        ops.invert_about_mean(amps)
    queries = database.counter.count - before

    probs = address_probabilities(amps)
    marked = sorted(database.reveal_marked())
    success = float(probs[marked].sum())
    return GroverResult(
        amplitudes=amps,
        iterations=iterations,
        queries=queries,
        success_probability=success,
        best_guess=int(np.argmax(probs)),
    )
