"""Generalised (phased) amplitude-amplification steps and a tail solver.

A *phased* Grover step replaces both π-reflections with rotations:

    ``G(phi_o, phi_d) = D(phi_d) · O(phi_o)``

where ``O`` multiplies marked amplitudes by ``e^{i phi_o}`` (one oracle
query) and ``D`` is the generalised diffusion of
:func:`repro.statevector.ops.invert_about_mean` (or its blockwise form).
Each step still costs exactly one query; the two continuous phases provide
the freedom integer iteration counts lack.  Two such steps (four phases)
suffice to meet any pair of real constraints reachable in the invariant
subspace — that is how :mod:`repro.core.sure_success` drives the
partial-search failure probability to machine zero, realising the paper's
"modified to return the correct answer with certainty" remark.

The solver here is deliberately generic: it minimises a caller-supplied
residual over the phase vector with a deterministic multi-start
least-squares strategy, so callers state *what* must vanish and not *how*.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy import optimize

from repro.oracle.quantum import PhaseOracle
from repro.statevector import ops

__all__ = ["phased_grover_step", "phased_block_grover_step", "solve_phases"]


def phased_grover_step(
    amps: np.ndarray, oracle: PhaseOracle, oracle_phase: float, diffusion_phase: float
) -> np.ndarray:
    """One counted phased iteration with *global* diffusion (in place)."""
    oracle.apply(amps, phase=oracle_phase)
    ops.invert_about_mean(amps, phase=diffusion_phase)
    return amps


def phased_block_grover_step(
    amps: np.ndarray,
    oracle: PhaseOracle,
    n_blocks: int,
    oracle_phase: float,
    diffusion_phase: float,
) -> np.ndarray:
    """One counted phased iteration with *blockwise* diffusion (in place)."""
    oracle.apply(amps, phase=oracle_phase)
    ops.invert_about_mean_blocks(amps, n_blocks, phase=diffusion_phase)
    return amps


def solve_phases(
    residual: Callable[[np.ndarray], np.ndarray],
    n_phases: int,
    *,
    starts: Sequence[Sequence[float]] | None = None,
    tolerance: float = 1e-12,
) -> np.ndarray:
    """Find phases making ``residual(phases)`` vanish.

    Args:
        residual: maps a phase vector (length ``n_phases``) to a 1-D array of
            real residuals; must be cheap (called O(100) times) and pure.
        n_phases: number of free phases.
        starts: optional explicit multi-start points; defaults to a small
            deterministic grid around the plain-π point.
        tolerance: maximum acceptable ``max(|residual|)`` of the solution.

    Returns:
        The phase vector achieving ``max |residual| <= tolerance``.

    Raises:
        RuntimeError: if no start converges below ``tolerance``.
    """
    if starts is None:
        base = np.full(n_phases, np.pi)
        offsets = [0.0, 0.35, -0.35, 0.8, -0.8, 1.4]
        starts = [base + off for off in offsets]
        # A couple of asymmetric starts help when symmetric ones stall.
        rng = np.random.default_rng(20050407)  # fixed: reproducible solver
        starts += [base + rng.uniform(-1.2, 1.2, size=n_phases) for _ in range(6)]

    best = None
    best_norm = np.inf
    for start in starts:
        sol = optimize.least_squares(
            residual,
            np.asarray(start, dtype=float),
            method="trf",
            xtol=1e-15,
            ftol=1e-15,
            gtol=1e-15,
            max_nfev=400,
        )
        norm = float(np.max(np.abs(sol.fun)))
        if norm < best_norm:
            best_norm, best = norm, sol.x
        if norm <= tolerance:
            return sol.x
    raise RuntimeError(
        f"phase solver did not reach tolerance {tolerance}; best residual {best_norm:.3e}"
    )
