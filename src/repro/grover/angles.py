"""Exact SU(2) kinematics of Grover search (single marked item unless noted).

With ``beta = arcsin(sqrt(M/N))`` (``M`` marked of ``N``), the state after
``j`` iterations of ``A = I_0 I_t`` starting from the uniform superposition is

    ``sin((2j+1) beta) |marked> + cos((2j+1) beta) |rest>``

where ``|marked>``/``|rest>`` are the uniform superpositions over marked and
unmarked addresses.  Everything here is closed-form and O(1), valid for any
``N`` (including sizes far beyond what a state vector can hold), and is the
ground truth the simulator is tested against.

The paper measures the Step 1 stopping point by the angle ``theta`` *left to
the target*: ``theta = pi/2 - (2 l1 + 1) beta``; see
:mod:`repro.core.parameters` for the partial-search-specific quantities.
"""

from __future__ import annotations

import math

__all__ = [
    "grover_angle",
    "angle_after",
    "angle_to_target_after",
    "amplitude_pair_after",
    "success_probability_after",
    "optimal_iterations",
    "iterations_for_angle",
    "queries_for_full_search",
]


def grover_angle(n_items: int, n_marked: int = 1) -> float:
    """``beta = arcsin(sqrt(M/N))`` — half the rotation per iteration."""
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    if not 0 < n_marked <= n_items:
        raise ValueError("need 0 < n_marked <= n_items")
    return math.asin(math.sqrt(n_marked / n_items))


def angle_after(n_items: int, iterations: int, n_marked: int = 1) -> float:
    """Angle ``(2j+1) beta`` between the state and ``|rest>`` after ``j`` iterations."""
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    return (2 * iterations + 1) * grover_angle(n_items, n_marked)


def angle_to_target_after(n_items: int, iterations: int, n_marked: int = 1) -> float:
    """The paper's ``theta``: angle still separating the state from ``|marked>``."""
    return math.pi / 2 - angle_after(n_items, iterations, n_marked)


def amplitude_pair_after(
    n_items: int, iterations: int, n_marked: int = 1
) -> tuple[float, float]:
    """Per-address amplitudes ``(a_marked, a_rest)`` after ``j`` iterations.

    Each marked address holds ``sin((2j+1)beta)/sqrt(M)``; each unmarked one
    ``cos((2j+1)beta)/sqrt(N-M)``.
    """
    ang = angle_after(n_items, iterations, n_marked)
    a_marked = math.sin(ang) / math.sqrt(n_marked)
    rest = n_items - n_marked
    a_rest = math.cos(ang) / math.sqrt(rest) if rest else 0.0
    return a_marked, a_rest


def success_probability_after(n_items: int, iterations: int, n_marked: int = 1) -> float:
    """``sin^2((2j+1) beta)`` — probability of measuring a marked address."""
    return math.sin(angle_after(n_items, iterations, n_marked)) ** 2


def optimal_iterations(n_items: int, n_marked: int = 1) -> int:
    """The success-maximising count: the ``j`` whose angle ``(2j+1) beta``
    lands closest to ``pi/2`` (≈ ``(pi/4) sqrt(N/M)``; may overshoot by less
    than one iteration, which beats stopping short).

    Success probability at this ``j`` is ``>= 1 - M/N``.
    """
    beta = grover_angle(n_items, n_marked)
    j = max(0, round((math.pi / (2.0 * beta) - 1.0) / 2.0))
    candidates = sorted({max(0, j - 1), j, j + 1})
    return min(candidates, key=lambda c: abs((2 * c + 1) * beta - math.pi / 2))


def iterations_for_angle(n_items: int, theta_remaining: float, n_marked: int = 1) -> int:
    """Largest ``j`` whose angle-to-target is still >= ``theta_remaining``.

    This realises the paper's ``l1(eps) = (pi/4)(1-eps) sqrt(N)`` with exact
    integer arithmetic: for ``theta_remaining = eps * pi/2`` it returns the
    number of standard iterations that stops (just short of) ``theta``
    radians from the target.
    """
    if not 0.0 <= theta_remaining <= math.pi / 2:
        raise ValueError("theta_remaining must lie in [0, pi/2]")
    beta = grover_angle(n_items, n_marked)
    # (2j+1) beta <= pi/2 - theta_remaining
    j = int(math.floor(((math.pi / 2 - theta_remaining) / beta - 1.0) / 2.0))
    return max(j, 0)


def queries_for_full_search(n_items: int) -> float:
    """The paper's headline ``(pi/4) sqrt(N)`` (a real number, not rounded)."""
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    return math.pi / 4 * math.sqrt(n_items)
