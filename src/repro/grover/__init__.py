"""Standard quantum search (Grover) substrate.

The GRK partial-search algorithm is built from pieces of ordinary Grover
search, so this package provides them as first-class, independently tested
components:

- :mod:`repro.grover.angles` — the exact SU(2) picture: rotation angles,
  iteration counts, closed-form success probabilities.
- :mod:`repro.grover.standard` — the textbook algorithm run on the
  state-vector simulator through a counted oracle.
- :mod:`repro.grover.exact` — Long-style phase-matched search with *zero*
  failure probability (the paper's "can be modified to return the correct
  answer with certainty" for full search).
- :mod:`repro.grover.amplify` — generalised (phased) amplitude-amplification
  steps and a numeric phase solver, used by the sure-success partial search.
- :mod:`repro.grover.twolevel` — O(1)-per-iteration analytic evolution in the
  two-dimensional invariant subspace, for arbitrarily large ``N``.
"""

from repro.grover.angles import (
    amplitude_pair_after,
    angle_after,
    grover_angle,
    optimal_iterations,
    queries_for_full_search,
    success_probability_after,
)
from repro.grover.standard import GroverResult, run_grover
from repro.grover.exact import long_phase, run_exact_grover
from repro.grover.twolevel import TwoLevelGrover
from repro.grover.bbht import BBHTResult, run_bbht

__all__ = [
    "amplitude_pair_after",
    "angle_after",
    "grover_angle",
    "optimal_iterations",
    "queries_for_full_search",
    "success_probability_after",
    "GroverResult",
    "run_grover",
    "long_phase",
    "run_exact_grover",
    "TwoLevelGrover",
    "BBHTResult",
    "run_bbht",
]
