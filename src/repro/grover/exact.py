"""Zero-failure ("sure success") full database search via phase matching.

Grover's original algorithm errs with probability O(1/N) because the integer
iteration count cannot land exactly on the target.  Long (Phys. Rev. A 64,
022307, 2001 — reference [6] of the paper) showed that replacing both
reflections by rotations through a common phase ``phi`` makes the final state
coincide with the target exactly:

    with ``beta = arcsin(1/sqrt(N))`` and any integer
    ``J >= ceil((pi/2 - beta) / (2*beta))``, choosing

        ``phi = 2 * arcsin( sin(pi / (4J + 6)) / sin(beta) )``

    and running ``J + 1`` phase-matched iterations yields the marked state
    with probability exactly 1 (up to a global phase).

This module implements that construction on the simulator.  The paper leans
on the same fact twice: the full-search baseline "can be modified so that the
correct answer is returned with certainty", and the partial-search
sure-success variant (:mod:`repro.core.sure_success`) applies the analogous
idea to the GRK schedule.
"""

from __future__ import annotations

import math

import numpy as np

from repro.grover.angles import grover_angle
from repro.oracle.database import SingleTargetDatabase
from repro.oracle.quantum import PhaseOracle
from repro.grover.standard import GroverResult
from repro.statevector import ops
from repro.statevector.measurement import address_probabilities

__all__ = ["long_phase", "minimum_iterations", "run_exact_grover"]


def minimum_iterations(n_items: int) -> int:
    """Smallest ``J`` admitted by Long's construction: ``ceil((pi/2 - beta)/(2 beta))``.

    ``J + 1`` phase-matched iterations are then performed, which is at most
    one more than the standard optimal count — the "constant extra queries"
    the paper alludes to.
    """
    beta = grover_angle(n_items)
    return max(0, math.ceil((math.pi / 2 - beta) / (2 * beta) - 1e-12))


def long_phase(n_items: int, total_iterations: int) -> float:
    """The matching phase ``phi`` for ``total_iterations = J + 1`` iterations.

    Raises:
        ValueError: if ``total_iterations`` is too small for the formula's
            ``arcsin`` argument to be <= 1 (i.e. fewer iterations than
            :func:`minimum_iterations` + 1).
    """
    if total_iterations < 1:
        raise ValueError("need at least one iteration")
    j = total_iterations - 1
    beta = grover_angle(n_items)
    ratio = math.sin(math.pi / (4 * j + 6)) / math.sin(beta)
    if ratio > 1.0 + 1e-12:
        raise ValueError(
            f"{total_iterations} iterations are too few for N={n_items}; "
            f"need J >= {minimum_iterations(n_items)}"
        )
    return 2.0 * math.asin(min(ratio, 1.0))


def run_exact_grover(
    database: SingleTargetDatabase, total_iterations: int | None = None
) -> GroverResult:
    """Run the phase-matched search; success probability is exactly 1.

    Args:
        database: counted single-target database.
        total_iterations: ``J + 1``; defaults to the minimum admissible.

    Returns:
        :class:`~repro.grover.standard.GroverResult`; its
        ``success_probability`` equals 1 up to float rounding (tested to
        ``1e-12``).
    """
    n = database.n_items
    if total_iterations is None:
        total_iterations = minimum_iterations(n) + 1
    phi = long_phase(n, total_iterations)

    amps = np.full(n, 1.0 / np.sqrt(n), dtype=np.complex128)
    oracle = PhaseOracle(database)
    before = database.counter.count
    for _ in range(total_iterations):
        oracle.apply(amps, phase=phi)
        ops.invert_about_mean(amps, phase=phi)
    queries = database.counter.count - before

    probs = address_probabilities(amps)
    marked = sorted(database.reveal_marked())
    return GroverResult(
        amplitudes=amps,
        iterations=total_iterations,
        queries=queries,
        success_probability=float(probs[marked].sum()),
        best_guess=int(np.argmax(probs)),
    )
