"""Search with an unknown number of marked items (Boyer-Brassard-Hoyer-Tapp).

The paper's reference [2] ("Tight bounds on quantum searching") underpins
the whole query-complexity landscape the paper works in, and matters
operationally for partial search: the naive Section 1.2 baseline searches
K−1 blocks *without knowing whether the target is among them* — exactly the
"possibly zero marked items" regime BBHT was designed for.

The algorithm: repeatedly pick an iteration count ``j`` uniformly from
``[0, m)``, run ``j`` Grover iterations from the uniform superposition,
measure, and check the outcome with one classical query; on failure grow
``m`` by a factor ``lam`` (here the classic 6/5) up to ``sqrt(N)``.  With a
unique marked item this finds it in expected O(sqrt(N)) queries; with *no*
marked item it runs forever unless capped, so a ``max_rounds`` cap makes the
"not found" outcome explicit — the caller can then conclude the searched
region is empty (the naive baseline's left-out-block inference).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.oracle.database import Database
from repro.oracle.quantum import PhaseOracle
from repro.statevector import ops
from repro.statevector.measurement import sample_addresses
from repro.util.rng import as_rng

__all__ = ["BBHTResult", "run_bbht"]


@dataclass(frozen=True)
class BBHTResult:
    """Outcome of a BBHT run.

    Attributes:
        found: a marked address, or ``None`` if the cap was hit (strong
            evidence the searched set is empty).
        queries: total oracle queries (quantum iterations + classical
            verification probes).
        rounds: measurement rounds used.
    """

    found: int | None
    queries: int
    rounds: int


def run_bbht(
    database: Database,
    *,
    rng=None,
    growth: float = 6.0 / 5.0,
    max_rounds: int | None = None,
) -> BBHTResult:
    """Find a marked item without knowing how many there are.

    Args:
        database: any counted database (0, 1, or many marked items).
        rng: randomness for iteration counts and measurements.
        growth: the ``lam`` factor (classic 6/5; must be in (1, 4/3]).
        max_rounds: stop after this many measurement rounds and report
            ``found=None``.  Default: enough rounds that a unique marked
            item would be found with overwhelming probability
            (``3 * ceil(log_lam(sqrt(N))) + 12``).

    Returns:
        :class:`BBHTResult`; when ``found`` is not ``None`` it is verified
        marked (a counted classical probe checked it).
    """
    if not 1.0 < growth <= 4.0 / 3.0:
        raise ValueError("growth must lie in (1, 4/3]")
    n = database.n_items
    gen = as_rng(rng)
    root_n = math.sqrt(n)
    if max_rounds is None:
        max_rounds = 3 * math.ceil(math.log(max(root_n, 2.0), growth)) + 12

    oracle = PhaseOracle(database)
    before = database.counter.count

    m = 1.0
    for rounds in range(1, max_rounds + 1):
        j = int(gen.integers(0, max(1, int(m))))
        amps = np.full(n, 1.0 / root_n)
        for _ in range(j):
            oracle.apply(amps)
            ops.invert_about_mean(amps)
        outcome = int(sample_addresses(amps, rng=gen))
        if database.query(outcome):  # counted verification probe
            return BBHTResult(
                found=outcome,
                queries=database.counter.count - before,
                rounds=rounds,
            )
        m = min(growth * m, root_n)
    return BBHTResult(found=None, queries=database.counter.count - before, rounds=max_rounds)
