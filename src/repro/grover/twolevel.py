"""Analytic evolution in Grover's two-dimensional invariant subspace.

For a single marked item the whole search lives in ``span{|t>, |r>}`` with
``|r>`` uniform over the other ``N-1`` addresses.  Tracking just the pair of
coefficients makes each iteration O(1), so this model handles ``N`` up to
``2**120`` — far beyond any state vector — and is validated against the full
simulator on small ``N``.  It also exposes the paper's "drift past the
target" behaviour (Section 2.1) explicitly: iterate beyond the optimum and
watch the target coefficient fall.
"""

from __future__ import annotations

import math

__all__ = ["TwoLevelGrover"]


class TwoLevelGrover:
    """State ``target_amp * |t> + rest_amp * |r>`` evolved exactly.

    Args:
        n_items: database size ``N`` (any positive int, arbitrarily large).

    The instance starts in the uniform superposition and mutates in place;
    ``iterations`` counts applications of ``A = I_0 I_t`` (== oracle queries).
    """

    __slots__ = ("n_items", "target_amp", "rest_amp", "iterations")

    def __init__(self, n_items: int):
        if n_items < 2:
            raise ValueError("need at least 2 items for a two-level picture")
        self.n_items = n_items
        root = math.sqrt(n_items)
        self.target_amp = 1.0 / root
        self.rest_amp = math.sqrt((n_items - 1)) / root  # = sqrt(1 - 1/N)
        self.iterations = 0

    # ------------------------------------------------------------ evolution
    def step(self, count: int = 1) -> "TwoLevelGrover":
        """Apply ``count`` exact Grover iterations (O(1) each).

        Uses the closed-form rotation rather than repeated 2x2 products, so
        even ``count ~ 1e18`` is instantaneous and drift-free.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        beta = math.asin(1.0 / math.sqrt(self.n_items))
        # Current angle from |r> (handles states off the canonical circle of
        # uniform starts because both coefficients are tracked explicitly).
        ang = math.atan2(self.target_amp, self.rest_amp)
        ang += 2 * beta * count
        self.target_amp = math.sin(ang)
        self.rest_amp = math.cos(ang)
        self.iterations += count
        return self

    # ----------------------------------------------------------- inspection
    def success_probability(self) -> float:
        """Probability of measuring the marked address."""
        return self.target_amp**2

    def per_address_rest_amplitude(self) -> float:
        """Amplitude of each individual unmarked address."""
        return self.rest_amp / math.sqrt(self.n_items - 1)

    def angle_to_target(self) -> float:
        """The paper's ``theta``: angle still separating state from ``|t>``."""
        return math.pi / 2 - math.atan2(self.target_amp, self.rest_amp)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TwoLevelGrover(n_items={self.n_items}, iterations={self.iterations}, "
            f"P_success={self.success_probability():.6f})"
        )
