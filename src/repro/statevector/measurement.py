"""Measurement statistics: address distributions, block marginals, sampling.

All functions accept amplitude arrays of shape ``(..., N)``; leading axes are
treated as *branches of the same state* (e.g. an ancilla qubit stored as the
first axis) and are summed over incoherently, which is exactly what measuring
only the address register does.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import as_rng

__all__ = [
    "address_probabilities",
    "block_probabilities",
    "sample_addresses",
    "sample_blocks",
    "success_probability",
]


def address_probabilities(amps: np.ndarray) -> np.ndarray:
    """``P(x)`` over the last axis, tracing out any leading (ancilla) axes.

    The result is clipped at 0 and **not** renormalised: for a valid state it
    already sums to 1 up to float error, and renormalising would mask norm
    bugs in the evolution kernels.
    """
    probs = np.abs(np.asarray(amps)) ** 2
    while probs.ndim > 1:
        probs = probs.sum(axis=0)
    return probs


def block_probabilities(amps: np.ndarray, n_blocks: int) -> np.ndarray:
    """Distribution over ``n_blocks`` contiguous equal blocks of addresses.

    This is the measurement the partial-search algorithm ends with: observing
    only the first ``k = log2(K)`` address bits.
    """
    probs = address_probabilities(amps)
    n = probs.shape[-1]
    if n_blocks <= 0 or n % n_blocks != 0:
        raise ValueError(f"n_blocks={n_blocks} must divide state size {n}")
    return probs.reshape(n_blocks, n // n_blocks).sum(axis=-1)


def sample_addresses(amps: np.ndarray, rng=None, size: int | None = None):
    """Draw address measurement outcome(s) from ``|a_x|^2``.

    Args:
        amps: amplitude array ``(..., N)``.
        rng: seed / generator (see :func:`repro.util.rng.as_rng`).
        size: ``None`` for a single int outcome, else an array of outcomes
            (sampling *with replacement* — repeated identical preparations).
    """
    probs = address_probabilities(amps)
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"probabilities sum to {total}, state is not normalised")
    probs = probs / total  # remove float residue for np.choice's strict check
    gen = as_rng(rng)
    out = gen.choice(probs.shape[-1], size=size, p=probs)
    return int(out) if size is None else out


def sample_blocks(amps: np.ndarray, n_blocks: int, rng=None, size: int | None = None):
    """Draw block measurement outcome(s) — i.e. measure the first k bits."""
    probs = block_probabilities(amps, n_blocks)
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"probabilities sum to {total}, state is not normalised")
    probs = probs / total
    gen = as_rng(rng)
    out = gen.choice(n_blocks, size=size, p=probs)
    return int(out) if size is None else out


def success_probability(amps: np.ndarray, target_block: int, n_blocks: int) -> float:
    """Probability that a block measurement returns ``target_block``."""
    probs = block_probabilities(amps, n_blocks)
    if not 0 <= target_block < n_blocks:
        raise ValueError(f"target_block {target_block} out of range [0, {n_blocks})")
    return float(probs[target_block])
