"""Measurement statistics: address distributions, block marginals, sampling.

All functions accept amplitude arrays of shape ``(..., N)``; leading axes are
treated as *branches of the same state* (e.g. an ancilla qubit stored as the
first axis) and are summed over incoherently, which is exactly what measuring
only the address register does.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.policy import COMPLEX64_SUCCESS_ATOL
from repro.kernels.primitives import check_norm
from repro.util.rng import as_rng

__all__ = [
    "address_probabilities",
    "block_probabilities",
    "sample_addresses",
    "sample_blocks",
    "success_probability",
]


def address_probabilities(amps: np.ndarray) -> np.ndarray:
    """``P(x)`` over the last axis, tracing out any leading (ancilla) axes.

    The result is clipped at 0 and **not** renormalised: for a valid state it
    already sums to 1 up to float error, and renormalising would mask norm
    bugs in the evolution kernels.
    """
    probs = np.abs(np.asarray(amps)) ** 2
    while probs.ndim > 1:
        probs = probs.sum(axis=0)
    return probs


def block_probabilities(amps: np.ndarray, n_blocks: int) -> np.ndarray:
    """Distribution over ``n_blocks`` contiguous equal blocks of addresses.

    This is the measurement the partial-search algorithm ends with: observing
    only the first ``k = log2(K)`` address bits.
    """
    probs = address_probabilities(amps)
    n = probs.shape[-1]
    if n_blocks <= 0 or n % n_blocks != 0:
        raise ValueError(f"n_blocks={n_blocks} must divide state size {n}")
    return probs.reshape(n_blocks, n // n_blocks).sum(axis=-1)


#: Residue beyond which ``Generator.choice``'s own sum check (atol
#: ``sqrt(eps) ~ 1.5e-8``) would reject the weights; comfortably below it.
_CHOICE_RESIDUE_ATOL = 1e-9


def _sampling_weights(probs: np.ndarray, renormalize: bool) -> np.ndarray:
    """Validated float64 weights for ``Generator.choice``.

    The norm guard is the kernel layer's :func:`repro.kernels.check_norm`;
    the per-call division is **opt-in** — float64 kernel outputs are
    unitary evolutions of a normalised state, already summing to 1 up to
    ~1e-15 residue, and dividing every call would both waste a pass and
    mask norm bugs in the evolution kernels.  Residue past
    :data:`_CHOICE_RESIDUE_ATOL` (what float32/complex64-policy states
    carry) is still divided automatically so it clears ``choice``'s strict
    internal sum check.  ``renormalize=True`` **bypasses the guard**
    entirely and always rescales: it exists for deliberately approximate
    states (truncated distributions, post-selected branches) whose norm is
    legitimately far from 1.
    """
    probs = np.asarray(probs)
    if renormalize:
        total = float(probs.sum(dtype=np.float64))
        if not np.isfinite(total) or total <= 0.0:
            raise ValueError(f"probabilities sum to {total}, cannot renormalise")
        return probs.astype(np.float64, copy=False) / total
    # The norm-bug guard is dtype-aware: float64 kernel outputs hold their
    # norm to ~1e-15, but the complex64 fast mode legitimately drifts up to
    # the documented tolerance contract — that drift is precision, not a
    # kernel bug, and must stay sampleable.
    atol = 1e-6 if probs.dtype.itemsize >= 8 else COMPLEX64_SUCCESS_ATOL
    # check_norm accumulates in float64, so its total is exactly the sum of
    # the float64 weights below — one reduction serves guard and rescale.
    total = check_norm(probs, atol=atol)
    weights = probs.astype(np.float64, copy=False)
    if abs(total - 1.0) > _CHOICE_RESIDUE_ATOL:
        weights = weights / total
    return weights


def sample_addresses(
    amps: np.ndarray, rng=None, size: int | None = None, *, renormalize: bool = False
):
    """Draw address measurement outcome(s) from ``|a_x|^2``.

    Args:
        amps: amplitude array ``(..., N)``.
        rng: seed / generator (see :func:`repro.util.rng.as_rng`).
        size: ``None`` for a single int outcome, else an array of outcomes
            (sampling *with replacement* — repeated identical preparations).
        renormalize: bypass the norm guard and rescale — for deliberately
            approximate states (truncated, post-selected) whose norm is
            legitimately far from 1.  By default kernel outputs sample
            as-is, dividing only when float32-scale residue would trip the
            sampler (see :func:`_sampling_weights`).
    """
    weights = _sampling_weights(address_probabilities(amps), renormalize)
    gen = as_rng(rng)
    out = gen.choice(weights.shape[-1], size=size, p=weights)
    return int(out) if size is None else out


def sample_blocks(
    amps: np.ndarray, n_blocks: int, rng=None, size: int | None = None,
    *, renormalize: bool = False,
):
    """Draw block measurement outcome(s) — i.e. measure the first k bits."""
    weights = _sampling_weights(block_probabilities(amps, n_blocks), renormalize)
    gen = as_rng(rng)
    out = gen.choice(n_blocks, size=size, p=weights)
    return int(out) if size is None else out


def success_probability(amps: np.ndarray, target_block: int, n_blocks: int) -> float:
    """Probability that a block measurement returns ``target_block``."""
    probs = block_probabilities(amps, n_blocks)
    if not 0 <= target_block < n_blocks:
        raise ValueError(f"target_block {target_block} out of range [0, {n_blocks})")
    return float(probs[target_block])
