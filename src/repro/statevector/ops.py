"""Structured reflection kernels — re-exported from :mod:`repro.kernels`.

Historically this module *implemented* the in-place amplitude kernels; the
unified kernel execution layer (:mod:`repro.kernels.primitives`) now owns
that math in one place, shared with the compiled circuit backend and the
batched runners, and this module re-exports the same callables unchanged so
every existing ``from repro.statevector import ops`` call site keeps
working.  See the kernel package for the conventions (in-place on the last
axis, broadcast over leading axes, dtype-polymorphic, O(N) with
``keepdims`` reductions).
"""

from __future__ import annotations

from repro.kernels.primitives import (
    apply_block_grover_iteration,
    apply_grover_iteration,
    invert_about_mean,
    invert_about_mean_blocks,
    invert_about_mean_masked,
    phase_flip,
    phase_rotate,
    reflect_about_state,
)

__all__ = [
    "phase_flip",
    "phase_rotate",
    "invert_about_mean",
    "invert_about_mean_blocks",
    "invert_about_mean_masked",
    "reflect_about_state",
    "apply_grover_iteration",
    "apply_block_grover_iteration",
]
