"""Validated state-vector wrapper for the public API.

Hot loops inside the library work directly on ``numpy`` arrays (see
:mod:`repro.statevector.ops`); :class:`StateVector` is the boundary type that
checks shapes/norms once and exposes convenient, well-documented operations.
"""

from __future__ import annotations

import numpy as np

from repro.statevector import ops
from repro.statevector.measurement import (
    address_probabilities,
    block_probabilities,
    sample_addresses,
)
from repro.util.validation import require, require_in_range

__all__ = ["StateVector"]

_NORM_ATOL = 1e-9


class StateVector:
    """An ``N``-dimensional pure state with real or complex amplitudes.

    The wrapped buffer is owned by the instance (inputs are copied unless
    ``copy=False`` is passed and the dtype already matches).  All mutating
    methods operate in place and return ``self`` for chaining.

    Args:
        amplitudes: 1-D array-like of length ``N``; must have unit 2-norm.
        copy: copy the input buffer (default) or adopt it.
        dtype: optional dtype override (``float64`` / ``complex128``).

    Raises:
        ValueError: for non-1-D input or a norm deviating from 1 by more
            than ``1e-9``.
    """

    __slots__ = ("_amps",)

    def __init__(self, amplitudes, *, copy: bool = True, dtype=None):
        arr = np.array(amplitudes, copy=copy, dtype=dtype)
        if arr.ndim != 1:
            raise ValueError(f"state must be 1-D, got shape {arr.shape}")
        if arr.dtype not in (np.float64, np.complex128):
            arr = arr.astype(np.complex128 if np.iscomplexobj(arr) else np.float64)
        norm = float(np.linalg.norm(arr))
        if abs(norm - 1.0) > _NORM_ATOL:
            raise ValueError(f"state norm is {norm}, expected 1 (atol {_NORM_ATOL})")
        self._amps = arr

    # ------------------------------------------------------------- factories
    @classmethod
    def uniform(cls, n_items: int, *, dtype=np.float64) -> "StateVector":
        """The uniform superposition ``|psi_0> = (1/sqrt(N)) sum_x |x>``."""
        require(n_items > 0, "n_items must be positive")
        amps = np.full(n_items, 1.0 / np.sqrt(n_items), dtype=dtype)
        return cls(amps, copy=False)

    @classmethod
    def basis(cls, n_items: int, index: int, *, dtype=np.float64) -> "StateVector":
        """The computational basis state ``|index>``."""
        require(n_items > 0, "n_items must be positive")
        require_in_range("index", index, 0, n_items, inclusive=False)
        amps = np.zeros(n_items, dtype=dtype)
        amps[index] = 1.0
        return cls(amps, copy=False)

    # ----------------------------------------------------------- inspection
    @property
    def n_items(self) -> int:
        """Dimension ``N`` of the state."""
        return self._amps.shape[0]

    @property
    def amplitudes(self) -> np.ndarray:
        """The underlying amplitude buffer (a live view — mutating it mutates
        the state; use :meth:`copy` first if that is not intended)."""
        return self._amps

    def copy(self) -> "StateVector":
        """An independent deep copy."""
        return StateVector(self._amps, copy=True)

    def norm(self) -> float:
        """Current 2-norm (1.0 up to float error for any unitary history)."""
        return float(np.linalg.norm(self._amps))

    def probabilities(self) -> np.ndarray:
        """Measurement distribution ``|a_x|^2`` over addresses."""
        return address_probabilities(self._amps)

    def probability_of(self, index: int) -> float:
        """Probability of observing address ``index``."""
        require_in_range("index", index, 0, self.n_items, inclusive=False)
        return float(np.abs(self._amps[index]) ** 2)

    def block_probabilities(self, n_blocks: int) -> np.ndarray:
        """Distribution over the ``n_blocks`` contiguous equal blocks."""
        return block_probabilities(self._amps, n_blocks)

    def fidelity(self, other: "StateVector") -> float:
        """``|<self|other>|^2`` with another state of the same dimension."""
        if other.n_items != self.n_items:
            raise ValueError("dimension mismatch")
        return float(np.abs(np.vdot(self._amps, other._amps)) ** 2)

    def measure(self, rng=None, size: int | None = None):
        """Sample address measurement outcomes (does not collapse the state)."""
        return sample_addresses(self._amps, rng=rng, size=size)

    # ------------------------------------------------------------ evolution
    def phase_flip(self, index) -> "StateVector":
        """Oracle reflection ``I_t`` at ``index`` (in place)."""
        ops.phase_flip(self._amps, index)
        return self

    def invert_about_mean(self, phase: float = np.pi) -> "StateVector":
        """Global diffusion ``I_0`` (in place)."""
        ops.invert_about_mean(self._amps, phase)
        return self

    def invert_about_mean_blocks(self, n_blocks: int, phase: float = np.pi) -> "StateVector":
        """Block-local diffusion ``I_K ⊗ I_0,[N/K]`` (in place)."""
        ops.invert_about_mean_blocks(self._amps, n_blocks, phase)
        return self

    def grover_iteration(self, target, iterations: int = 1) -> "StateVector":
        """``A = I_0 I_t`` applied ``iterations`` times (in place)."""
        ops.apply_grover_iteration(self._amps, target, iterations)
        return self

    def block_grover_iteration(self, target, n_blocks: int, iterations: int = 1) -> "StateVector":
        """``A_[N/K]`` applied ``iterations`` times (in place)."""
        ops.apply_block_grover_iteration(self._amps, target, n_blocks, iterations)
        return self

    # -------------------------------------------------------------- dunders
    def __len__(self) -> int:
        return self.n_items

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StateVector(n_items={self.n_items}, dtype={self._amps.dtype})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, StateVector):
            return NotImplemented
        return self.n_items == other.n_items and bool(
            np.allclose(self._amps, other._amps, atol=1e-12)
        )

    def __hash__(self):  # states are mutable
        raise TypeError("StateVector is mutable and unhashable")
