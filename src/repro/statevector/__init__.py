"""Dense state-vector simulator with structured O(N) reflection operators.

This is the execution substrate for every quantum algorithm in the library.
Grover-type algorithms only ever need a handful of *structured* unitaries —
selective phase flips, inversion about the mean (globally, per block, or on a
masked subset), and an ancilla-controlled "move-out" — all of which act on an
amplitude vector in O(N) time and O(1) extra memory.  The hot-path functions
in :mod:`repro.statevector.ops` therefore take raw ``numpy`` arrays, operate
in place, and broadcast over leading batch axes (so one call can advance many
independent searches at once).

:class:`~repro.statevector.state.StateVector` is a thin validated wrapper for
the public API; :mod:`repro.statevector.dense` builds the same operators as
explicit matrices for small-``N`` cross-validation of the structured kernels.
"""

from repro.statevector.state import StateVector
from repro.statevector.ops import (
    apply_grover_iteration,
    apply_block_grover_iteration,
    invert_about_mean,
    invert_about_mean_blocks,
    invert_about_mean_masked,
    phase_flip,
    phase_rotate,
    reflect_about_state,
)
from repro.statevector.measurement import (
    address_probabilities,
    block_probabilities,
    sample_addresses,
    success_probability,
)
from repro.statevector import dense

__all__ = [
    "StateVector",
    "apply_grover_iteration",
    "apply_block_grover_iteration",
    "invert_about_mean",
    "invert_about_mean_blocks",
    "invert_about_mean_masked",
    "phase_flip",
    "phase_rotate",
    "reflect_about_state",
    "address_probabilities",
    "block_probabilities",
    "sample_addresses",
    "success_probability",
    "dense",
]
