"""Dense-matrix mirrors of every structured operator, for cross-validation.

Building the full ``N x N`` (or ``2N x 2N`` with ancilla) unitaries is
O(N^2) memory — useless for production runs but invaluable for tests: every
kernel in :mod:`repro.statevector.ops` is checked elementwise against the
matrix built here, and each matrix is checked for unitarity.  Keeping the
mirrors in the package (rather than in the test tree) also documents the
exact linear algebra each structured kernel implements.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "phase_flip_matrix",
    "phase_rotate_matrix",
    "diffusion_matrix",
    "block_diffusion_matrix",
    "masked_diffusion_matrix",
    "controlled_diffusion_with_ancilla",
    "move_out_matrix",
    "grover_matrix",
    "block_grover_matrix",
    "reflection_matrix",
    "is_unitary",
]


def phase_flip_matrix(n_items: int, index) -> np.ndarray:
    """``I_t = I - 2 sum_{t in index} |t><t|`` as a dense matrix."""
    mat = np.eye(n_items)
    mat[index, index] = -1.0
    return mat


def phase_rotate_matrix(n_items: int, index, phase: float) -> np.ndarray:
    """Generalised oracle: ``|t>`` picks up ``e^{i*phase}``."""
    mat = np.eye(n_items, dtype=np.complex128)
    mat[index, index] = np.exp(1j * phase)
    return mat


def diffusion_matrix(n_items: int, phase: float = np.pi) -> np.ndarray:
    """``D(phase) = (1 - e^{i*phase}) |psi_0><psi_0| - I`` (dense).

    ``D(pi) = 2|psi_0><psi_0| - I`` is the paper's ``I_0``.
    """
    projector = np.full((n_items, n_items), 1.0 / n_items)
    if phase == np.pi:
        return 2.0 * projector - np.eye(n_items)
    return (1.0 - np.exp(1j * phase)) * projector - np.eye(n_items, dtype=np.complex128)


def block_diffusion_matrix(n_items: int, n_blocks: int, phase: float = np.pi) -> np.ndarray:
    """``I_K ⊗ D_[N/K](phase)`` — Step 2's block-parallel diffusion (dense)."""
    if n_blocks <= 0 or n_items % n_blocks != 0:
        raise ValueError(f"n_blocks={n_blocks} must divide n_items={n_items}")
    block = diffusion_matrix(n_items // n_blocks, phase)
    return np.kron(np.eye(n_blocks), block)


def masked_diffusion_matrix(n_items: int, mask) -> np.ndarray:
    """Dense mirror of :func:`repro.statevector.ops.invert_about_mean_masked`.

    ``2|u_m><u_m| - I`` on the masked subspace (``|u_m>`` uniform over the
    ``m`` masked addresses), identity outside.  Unitary for every mask.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (n_items,):
        raise ValueError("mask must have shape (n_items,)")
    mat = np.eye(n_items)
    m = np.where(mask)[0]
    if m.size:
        mat[np.ix_(m, m)] = (2.0 / m.size) - np.eye(m.size)
    return mat


def controlled_diffusion_with_ancilla(n_items: int) -> np.ndarray:
    """The exact Step 3 unitary on the ``2N``-dimensional (ancilla, address) space.

    ``|0><0|_b ⊗ (2|psi_0><psi_0| - I) + |1><1|_b ⊗ I`` — inversion about the
    average controlled on the ancilla being 0.
    """
    top = diffusion_matrix(n_items)
    out = np.zeros((2 * n_items, 2 * n_items))
    out[:n_items, :n_items] = top
    out[n_items:, n_items:] = np.eye(n_items)
    return out


def move_out_matrix(n_items: int, target: int) -> np.ndarray:
    """Step 3's ``M``: flip the ancilla iff the address is the target.

    Basis ordering is ``(b, x)`` flattened with the ancilla as the slow axis:
    index ``b * N + x``.  ``M`` swaps ``(0, t) <-> (1, t)``.
    """
    out = np.eye(2 * n_items)
    t0, t1 = target, n_items + target
    out[t0, t0] = out[t1, t1] = 0.0
    out[t0, t1] = out[t1, t0] = 1.0
    return out


def reflection_matrix(axis_state: np.ndarray, phase: float = np.pi) -> np.ndarray:
    """``I - (1 - e^{i*phase}) |s><s|`` for a unit vector ``s`` (dense)."""
    s = np.asarray(axis_state).reshape(-1, 1)
    outer = s @ s.conj().T
    if phase == np.pi:
        return np.eye(s.size) - 2.0 * outer.real if not np.iscomplexobj(s) else np.eye(s.size) - 2.0 * outer
    return np.eye(s.size, dtype=np.complex128) - (1.0 - np.exp(1j * phase)) * outer


def grover_matrix(n_items: int, target: int) -> np.ndarray:
    """One full Grover iteration ``A = I_0 I_t`` (dense)."""
    return diffusion_matrix(n_items) @ phase_flip_matrix(n_items, target)


def block_grover_matrix(n_items: int, n_blocks: int, target: int) -> np.ndarray:
    """One Step 2 iteration ``A_[N/K] = (I_K ⊗ I_0,[N/K]) I_t`` (dense)."""
    return block_diffusion_matrix(n_items, n_blocks) @ phase_flip_matrix(n_items, target)


def is_unitary(mat: np.ndarray, atol: float = 1e-10) -> bool:
    """Check ``U U^dagger = I`` within *atol*."""
    mat = np.asarray(mat)
    n = mat.shape[0]
    return bool(np.allclose(mat @ mat.conj().T, np.eye(n), atol=atol))
