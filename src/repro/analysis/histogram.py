"""ASCII amplitude histograms — Figures 1 and 5 as terminal output.

The paper's figures are signed bar charts of basis-state amplitudes with the
block structure visible.  For small ``N`` we draw one bar per basis state;
for large ``N`` we aggregate per block (target amplitude, per-state rest
amplitude), which loses nothing because every GRK stage is symmetric within
each block class.
"""

from __future__ import annotations

import numpy as np

__all__ = ["amplitude_bars", "block_profile", "figure_histogram"]


def amplitude_bars(amplitudes, width: int = 41, labels=None) -> str:
    """Signed horizontal bars, one line per basis state (small ``N``).

    The zero axis sits mid-line; ``#`` bars extend right for positive and
    left for negative amplitudes, scaled to the largest magnitude.
    """
    amps = np.asarray(amplitudes, dtype=float)
    if amps.ndim != 1:
        raise ValueError("amplitudes must be 1-D (flatten ancilla first)")
    if width < 5 or width % 2 == 0:
        raise ValueError("width must be an odd integer >= 5")
    half = (width - 1) // 2
    peak = float(np.max(np.abs(amps))) or 1.0
    if labels is None:
        labels = [str(i) for i in range(amps.size)]
    label_w = max(len(str(lbl)) for lbl in labels)
    lines = []
    for lbl, a in zip(labels, amps):
        n_cells = round(abs(a) / peak * half)
        left = "#" * n_cells if a < 0 else ""
        right = "#" * n_cells if a > 0 else ""
        bar = left.rjust(half) + "|" + right.ljust(half)
        lines.append(f"{str(lbl).rjust(label_w)}  {bar}  {a:+.4f}")
    return "\n".join(lines)


def block_profile(amplitudes, n_blocks: int) -> list[dict]:
    """Per-block summary rows: extremes and whether the block is uniform.

    Each row: ``block``, ``max_amp``, ``min_amp``, ``uniform`` (all
    amplitudes equal to 1e-12), ``mass`` (probability of the block).
    """
    amps = np.asarray(amplitudes, dtype=float)
    n = amps.shape[-1]
    if n_blocks <= 0 or n % n_blocks != 0:
        raise ValueError(f"n_blocks={n_blocks} must divide {n}")
    view = amps.reshape(n_blocks, n // n_blocks)
    rows = []
    for y in range(n_blocks):
        block = view[y]
        rows.append(
            {
                "block": y,
                "max_amp": float(block.max()),
                "min_amp": float(block.min()),
                "uniform": bool(np.ptp(block) < 1e-12),
                "mass": float(np.sum(block**2)),
            }
        )
    return rows


def figure_histogram(amplitudes, n_blocks: int, *, max_states: int = 64) -> str:
    """Figure 1/5-style rendering with block separators.

    One bar per state when ``N <= max_states``; otherwise a two-line
    summary per block (target-like extreme and typical rest amplitude),
    which is lossless for the symmetric states the algorithm produces.
    """
    amps = np.asarray(amplitudes, dtype=float)
    n = amps.shape[-1]
    if n_blocks <= 0 or n % n_blocks != 0:
        raise ValueError(f"n_blocks={n_blocks} must divide {n}")
    block = n // n_blocks
    if n <= max_states:
        labels = [f"{y}:{z}" for y in range(n_blocks) for z in range(block)]
        body = amplitude_bars(amps, labels=labels)
        # Insert a separator line between blocks.
        lines = body.split("\n")
        out = []
        for i, line in enumerate(lines):
            if i > 0 and i % block == 0:
                out.append("-" * len(line))
            out.append(line)
        return "\n".join(out)
    rows = block_profile(amps, n_blocks)
    summary = [
        f"block {r['block']:>4}:  amp range [{r['min_amp']:+.6f}, {r['max_amp']:+.6f}]"
        f"  mass {r['mass']:.6f}" + ("  (uniform)" if r["uniform"] else "")
        for r in rows
    ]
    return "\n".join(summary)
