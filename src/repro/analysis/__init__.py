"""Analysis helpers: closed-form theory, amplitude histograms, sweeps.

Nothing here performs quantum evolution; these modules interpret results
from :mod:`repro.core` / :mod:`repro.grover` and render the paper's figures
and tables as text.
"""

from repro.analysis.theory import (
    LARGE_K_CONSTANT,
    classical_randomized_partial_coefficient,
    large_k_coefficient,
    large_k_epsilon,
    naive_quantum_coefficient,
    savings_factor,
)
from repro.analysis.histogram import (
    amplitude_bars,
    block_profile,
    figure_histogram,
)
from repro.analysis.sweep import sweep_coefficients, sweep_partial_search

__all__ = [
    "LARGE_K_CONSTANT",
    "classical_randomized_partial_coefficient",
    "large_k_coefficient",
    "large_k_epsilon",
    "naive_quantum_coefficient",
    "savings_factor",
    "amplitude_bars",
    "block_profile",
    "figure_histogram",
    "sweep_coefficients",
    "sweep_partial_search",
]
