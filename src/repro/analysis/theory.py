"""Closed-form comparisons and the paper's large-``K`` asymptotics.

The quantities every bench quotes, in one place:

- full quantum search: ``(pi/4) sqrt(N)``;
- naive quantum partial search (Section 1.2):
  ``(pi/4) sqrt((K-1)/K) sqrt(N) ~ (pi/4)(1 - 1/(2K)) sqrt(N)``;
- GRK partial search: ``(pi/4)(1 - c_K) sqrt(N)`` with
  ``c_K >= 0.42/sqrt(K)`` for large ``K`` — the 0.42 being
  ``1 - (2/pi) arcsin(pi/4) = 0.42497...`` (:data:`LARGE_K_CONSTANT`);
- classical randomized partial search: ``(N/2)(1 - 1/K^2)``.
"""

from __future__ import annotations

import math

from repro.core.parameters import GRKParameters

__all__ = [
    "LARGE_K_CONSTANT",
    "large_k_epsilon",
    "large_k_coefficient",
    "naive_quantum_coefficient",
    "classical_randomized_partial_coefficient",
    "savings_factor",
]

#: ``1 - (2/pi) arcsin(pi/4)`` — the paper's "0.42" (Section 3.1, last line).
LARGE_K_CONSTANT = 1.0 - (2.0 / math.pi) * math.asin(math.pi / 4.0)


def large_k_epsilon(n_blocks: int) -> float:
    """The paper's large-``K`` choice ``eps = 1/sqrt(K)``."""
    if n_blocks < 2:
        raise ValueError("n_blocks must be >= 2")
    return 1.0 / math.sqrt(n_blocks)


def large_k_coefficient(n_blocks: int, *, first_order: bool = False) -> float:
    """Query coefficient at ``eps = 1/sqrt(K)``.

    ``first_order=False`` (default) evaluates the exact formula
    ``q(1/sqrt(K), K)``; ``first_order=True`` returns the paper's expansion
    ``(pi/4)(1 - LARGE_K_CONSTANT/sqrt(K))`` — they agree to ``O(1/K)``,
    which the asymptotics bench demonstrates.
    """
    if first_order:
        return (math.pi / 4.0) * (1.0 - LARGE_K_CONSTANT / math.sqrt(n_blocks))
    return GRKParameters(n_blocks, large_k_epsilon(n_blocks)).query_coefficient


def naive_quantum_coefficient(n_blocks: int) -> float:
    """Section 1.2 baseline: ``(pi/4) sqrt((K-1)/K)`` per ``sqrt(N)``."""
    if n_blocks < 2:
        raise ValueError("n_blocks must be >= 2")
    return (math.pi / 4.0) * math.sqrt((n_blocks - 1) / n_blocks)


def classical_randomized_partial_coefficient(n_blocks: int) -> float:
    """Classical expected queries per ``N`` (not per ``sqrt(N)``):
    ``(1/2)(1 - 1/K^2)``."""
    if n_blocks < 2:
        raise ValueError("n_blocks must be >= 2")
    return 0.5 * (1.0 - 1.0 / n_blocks**2)


def savings_factor(coefficient: float) -> float:
    """``c`` such that ``coefficient = (pi/4)(1 - c)`` — how much of full
    search's budget an algorithm saves."""
    return 1.0 - coefficient / (math.pi / 4.0)
