"""Closed-form comparisons and the paper's large-``K`` asymptotics.

The quantities every bench quotes, in one place:

- full quantum search: ``(pi/4) sqrt(N)``;
- naive quantum partial search (Section 1.2):
  ``(pi/4) sqrt((K-1)/K) sqrt(N) ~ (pi/4)(1 - 1/(2K)) sqrt(N)``;
- GRK partial search: ``(pi/4)(1 - c_K) sqrt(N)`` with
  ``c_K >= 0.42/sqrt(K)`` for large ``K`` — the 0.42 being
  ``1 - (2/pi) arcsin(pi/4) = 0.42497...`` (:data:`LARGE_K_CONSTANT`);
- classical randomized partial search: ``(N/2)(1 - 1/K^2)``.
"""

from __future__ import annotations

import math

from repro.core.parameters import GRKParameters

__all__ = [
    "LARGE_K_CONSTANT",
    "CWB_EXTRA_QUERIES_BOUND",
    "large_k_epsilon",
    "large_k_coefficient",
    "naive_quantum_coefficient",
    "classical_randomized_partial_coefficient",
    "simplified_partial_coefficient",
    "cwb_query_coefficient",
    "cwb_asymptotic_coefficient",
    "savings_factor",
]

#: ``1 - (2/pi) arcsin(pi/4)`` — the paper's "0.42" (Section 3.1, last line).
LARGE_K_CONSTANT = 1.0 - (2.0 / math.pi) * math.asin(math.pi / 4.0)


def large_k_epsilon(n_blocks: int) -> float:
    """The paper's large-``K`` choice ``eps = 1/sqrt(K)``."""
    if n_blocks < 2:
        raise ValueError("n_blocks must be >= 2")
    return 1.0 / math.sqrt(n_blocks)


def large_k_coefficient(n_blocks: int, *, first_order: bool = False) -> float:
    """Query coefficient at ``eps = 1/sqrt(K)``.

    ``first_order=False`` (default) evaluates the exact formula
    ``q(1/sqrt(K), K)``; ``first_order=True`` returns the paper's expansion
    ``(pi/4)(1 - LARGE_K_CONSTANT/sqrt(K))`` — they agree to ``O(1/K)``,
    which the asymptotics bench demonstrates.
    """
    if first_order:
        return (math.pi / 4.0) * (1.0 - LARGE_K_CONSTANT / math.sqrt(n_blocks))
    return GRKParameters(n_blocks, large_k_epsilon(n_blocks)).query_coefficient


def naive_quantum_coefficient(n_blocks: int) -> float:
    """Section 1.2 baseline: ``(pi/4) sqrt((K-1)/K)`` per ``sqrt(N)``."""
    if n_blocks < 2:
        raise ValueError("n_blocks must be >= 2")
    return (math.pi / 4.0) * math.sqrt((n_blocks - 1) / n_blocks)


def classical_randomized_partial_coefficient(n_blocks: int) -> float:
    """Classical expected queries per ``N`` (not per ``sqrt(N)``):
    ``(1/2)(1 - 1/K^2)``."""
    if n_blocks < 2:
        raise ValueError("n_blocks must be >= 2")
    return 0.5 * (1.0 - 1.0 / n_blocks**2)


#: Choi–Walker–Braunstein certainty cost (quant-ph/0603136, Theorem 1 of
#: the source paper): the sure-success modification "increases the number
#: of queries by at most a constant" — at the paper's representative
#: geometries the solved plans spend at most **2** queries over the plain
#: GRK budget (usually 0 or 1; pinned by ``test_paper_values.py``).
CWB_EXTRA_QUERIES_BOUND = 2


def simplified_partial_coefficient(n_blocks: int) -> float:
    """Optimised query coefficient of the ancilla-free family per ``sqrt(N)``.

    The Korepin–Grover simplified algorithm (quant-ph/0504157) drops
    Step 3's ancilla-controlled diffusion and ends on a plain global
    iteration; quant-ph/0510179 optimises its continuous ``(j1, j2)``
    trade-off.  This is the exact large-``N`` optimum for ``K`` blocks
    (the repo's pinned table — ``0.555 sqrt(N)`` at ``K = 2`` up to
    ``0.725 sqrt(N)`` at ``K = 32``, approaching the full-search
    ``pi/4 = 0.785`` as ``(pi/4)(1 - 0.42497/sqrt(K))`` from below).

    Delegates to the cached continuous optimiser in
    :mod:`repro.core.simplified` — one scipy solve per ``K``, then O(1).
    """
    from repro.core.simplified import simplified_query_coefficient

    if n_blocks < 2:
        raise ValueError("n_blocks must be >= 2")
    return simplified_query_coefficient(n_blocks)


def cwb_query_coefficient(
    n_items: int, n_blocks: int, epsilon: float | None = None
) -> float:
    """Finite-``N`` upper bound on the CWB coefficient per ``sqrt(N)``.

    quant-ph/0603136 reaches certainty by re-phasing iterations the GRK
    schedule already performs, escalating the integer budget by at most
    :data:`CWB_EXTRA_QUERIES_BOUND` queries — so the plain schedule's
    query count plus that constant, normalised by ``sqrt(N)``, bounds the
    solved plan's coefficient from above (the solved plan itself is exact
    and usually cheaper; the pins compare both).
    """
    from repro.core.parameters import plan_schedule

    schedule = plan_schedule(n_items, n_blocks, epsilon)
    return (schedule.queries + CWB_EXTRA_QUERIES_BOUND) / math.sqrt(n_items)


def cwb_asymptotic_coefficient(n_blocks: int) -> float:
    """Large-``N`` coefficient of sure-success partial search per ``sqrt(N)``.

    Certainty is asymptotically free: the CWB constant-query surcharge
    vanishes against ``sqrt(N)``, so the sure-success family's coefficient
    converges to the optimised partial-search optimum for the same ``K``
    (the ancilla-free optimum of quant-ph/0510179).
    """
    return simplified_partial_coefficient(n_blocks)


def savings_factor(coefficient: float) -> float:
    """``c`` such that ``coefficient = (pi/4)(1 - c)`` — how much of full
    search's budget an algorithm saves."""
    return 1.0 - coefficient / (math.pi / 4.0)
