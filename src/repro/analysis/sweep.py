"""Parameter sweeps over ``(N, K, eps)`` grids.

Sweeps use the O(1) subspace model by default so grids with ``N = 2**40``
cost microseconds per cell; pass ``simulate=True`` to cross-check cells on
the full simulator — by default the compiled gate-level backend run over
*every* target in one batched program (see :mod:`repro.circuits.compiler`),
so even the all-targets check stays cheap at simulable sizes.

The implementation lives in :meth:`repro.engine.SearchEngine.sweep` (which
adds the memory-bounded shard policy for the simulated cells);
:func:`sweep_partial_search` remains as a thin deprecated wrapper.
"""

from __future__ import annotations

import math
import warnings
from typing import Iterable, Sequence

from repro.engine.engine import SWEEP_SIMULATE_MAX_ITEMS

__all__ = ["sweep_partial_search", "sweep_coefficients"]

#: Largest ``N`` a ``simulate=True`` sweep will run on the full simulator
#: (alias of the engine's constant — the engine owns the implementation).
SIMULATE_MAX_ITEMS = SWEEP_SIMULATE_MAX_ITEMS


def sweep_partial_search(
    n_items_values: Sequence[int],
    n_blocks_values: Sequence[int],
    epsilon: float | None = None,
    *,
    simulate: bool = False,
    backend: str = "compiled",
) -> list[dict]:
    """Exact schedule/query/success grid via the subspace model.

    .. deprecated::
        Thin wrapper over :meth:`repro.engine.SearchEngine.sweep`, kept for
        source compatibility; new code should call the engine, which also
        exposes the shard policy for the simulated cells.

    Returns one row per ``(N, K)`` with keys ``n_items``, ``n_blocks``,
    ``epsilon``, ``l1``, ``l2``, ``queries``, ``coefficient``
    (``queries/sqrt(N)``), ``success``, ``failure``.  Pairs where ``K`` does
    not divide ``N`` are skipped.

    With ``simulate=True`` each cell with ``N <= SIMULATE_MAX_ITEMS`` is
    additionally executed for every target on the full simulator (the
    batched runner with the given *backend*; cells whose geometry the
    circuit backends cannot express fall back to the ``"kernels"`` batch),
    adding keys ``sim_worst_success`` (min over targets) and
    ``sim_all_correct``.  Cells too large to simulate get ``None`` there.
    """
    warnings.warn(
        "sweep_partial_search is deprecated; use repro.engine.SearchEngine.sweep",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.engine import SearchEngine

    return SearchEngine().sweep(
        n_items_values,
        n_blocks_values,
        epsilon,
        simulate=simulate,
        backend=backend,
        simulate_max_items=SIMULATE_MAX_ITEMS,
    )


def sweep_coefficients(n_blocks_values: Iterable[int]) -> list[dict]:
    """Asymptotic-coefficient comparison per ``K``: GRK optimum vs the naive
    quantum baseline vs the Theorem 2 lower bound.

    Keys: ``n_blocks``, ``epsilon``, ``grk``, ``naive``, ``lower``,
    ``grk_savings_times_sqrt_k`` (should approach ~0.42+ from above as ``K``
    grows — the Theorem 1 constant).
    """
    from repro.analysis.theory import naive_quantum_coefficient
    from repro.core.optimizer import optimal_epsilon
    from repro.lowerbounds.partial import lower_bound_coefficient

    rows = []
    for k in n_blocks_values:
        opt = optimal_epsilon(k)
        rows.append(
            {
                "n_blocks": k,
                "epsilon": opt.epsilon,
                "grk": opt.coefficient,
                "naive": naive_quantum_coefficient(k),
                "lower": lower_bound_coefficient(k),
                "grk_savings_times_sqrt_k": opt.savings * math.sqrt(k),
            }
        )
    return rows
