"""Parameter sweeps over ``(N, K, eps)`` grids.

Sweeps use the O(1) subspace model by default so grids with ``N = 2**40``
cost microseconds per cell; pass ``simulate=True`` to cross-check cells on
the full simulator — by default the compiled gate-level backend run over
*every* target in one batched program (see :mod:`repro.circuits.compiler`),
so even the all-targets check stays cheap at simulable sizes.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.blockspec import BlockSpec
from repro.core.parameters import plan_schedule
from repro.core.subspace import SubspaceGRK
from repro.util.bits import is_power_of_two

__all__ = ["sweep_partial_search", "sweep_coefficients"]

#: Largest ``N`` a ``simulate=True`` sweep will run on the full simulator.
SIMULATE_MAX_ITEMS = 4096


def sweep_partial_search(
    n_items_values: Sequence[int],
    n_blocks_values: Sequence[int],
    epsilon: float | None = None,
    *,
    simulate: bool = False,
    backend: str = "compiled",
) -> list[dict]:
    """Exact schedule/query/success grid via the subspace model.

    Returns one row per ``(N, K)`` with keys ``n_items``, ``n_blocks``,
    ``epsilon``, ``l1``, ``l2``, ``queries``, ``coefficient``
    (``queries/sqrt(N)``), ``success``, ``failure``.  Pairs where ``K`` does
    not divide ``N`` are skipped.

    With ``simulate=True`` each cell with ``N <= SIMULATE_MAX_ITEMS`` is
    additionally executed for every target on the full simulator (the
    batched runner with the given *backend*; cells whose geometry the
    circuit backends cannot express fall back to the ``"kernels"`` batch),
    adding keys ``sim_worst_success`` (min over targets) and
    ``sim_all_correct``.  Cells too large to simulate get ``None`` there.
    """
    from repro.core.backends import validate_backend
    from repro.core.batch import run_partial_search_batch

    if simulate:
        validate_backend(backend)
    rows = []
    for n in n_items_values:
        for k in n_blocks_values:
            if k < 2 or n % k != 0 or n // k < 2:
                continue
            schedule = plan_schedule(n, k, epsilon)
            model = SubspaceGRK(BlockSpec(n, k))
            failure = model.failure_probability(schedule.l1, schedule.l2)
            row = {
                "n_items": n,
                "n_blocks": k,
                "epsilon": schedule.epsilon,
                "l1": schedule.l1,
                "l2": schedule.l2,
                "queries": schedule.queries,
                "coefficient": schedule.queries / math.sqrt(n),
                "success": schedule.predicted_success,
                "failure": failure,
            }
            if simulate:
                row["sim_worst_success"] = None
                row["sim_all_correct"] = None
                if n <= SIMULATE_MAX_ITEMS:
                    cell_backend = backend
                    if cell_backend != "kernels" and not (
                        is_power_of_two(n) and is_power_of_two(k)
                    ):
                        cell_backend = "kernels"
                    result = run_partial_search_batch(
                        n, k, range(n), schedule=schedule, backend=cell_backend
                    )
                    row["sim_worst_success"] = result.worst_success
                    row["sim_all_correct"] = result.all_correct
            rows.append(row)
    return rows


def sweep_coefficients(n_blocks_values: Iterable[int]) -> list[dict]:
    """Asymptotic-coefficient comparison per ``K``: GRK optimum vs the naive
    quantum baseline vs the Theorem 2 lower bound.

    Keys: ``n_blocks``, ``epsilon``, ``grk``, ``naive``, ``lower``,
    ``grk_savings_times_sqrt_k`` (should approach ~0.42+ from above as ``K``
    grows — the Theorem 1 constant).
    """
    from repro.analysis.theory import naive_quantum_coefficient
    from repro.core.optimizer import optimal_epsilon
    from repro.lowerbounds.partial import lower_bound_coefficient

    rows = []
    for k in n_blocks_values:
        opt = optimal_epsilon(k)
        rows.append(
            {
                "n_blocks": k,
                "epsilon": opt.epsilon,
                "grk": opt.coefficient,
                "naive": naive_quantum_coefficient(k),
                "lower": lower_bound_coefficient(k),
                "grk_savings_times_sqrt_k": opt.savings * math.sqrt(k),
            }
        )
    return rows
