"""Memory-bounded execution planning for batched searches.

An all-targets GRK batch at 12 address qubits is a ``(4096, 8192)`` complex
state matrix — ~0.5 GB before kernel temporaries.  The planner converts a
:class:`~repro.engine.request.ShardPolicy` byte budget into a per-shard row
count from a per-backend row-size model, splits the target batch into
``(B_chunk, N)`` shards, executes them independently (rows never interact,
so shard boundaries are bit-invisible in the results), and dispatches the
shard list through a :class:`repro.service.executor.ShardExecutor` — by
default the in-process/process-pool :class:`~repro.service.executor.LocalExecutor`,
or any custom executor (e.g. the TCP-distributed
:class:`~repro.service.executor.RemoteExecutor`) installed on the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.backends import CIRCUIT_BACKENDS, KERNEL_BACKEND
from repro.engine.request import ExecutionPolicy, ShardPolicy
from repro.observability.spans import span

__all__ = [
    "ExecutionPlan",
    "plan_shards",
    "state_row_bytes",
    "run_grk_batch_sharded",
    "run_simplified_batch_sharded",
]

#: Working-set multiplier over the bare state row: the kernels allocate
#: mean-broadcast temporaries and the final block-probability reshape, and
#: the circuit path materialises ``abs(state)**2``; 4x the resident row is a
#: conservative envelope validated by the sharded-batch bench.
ROW_OVERHEAD = 4

#: Nominal per-row bookkeeping bytes for backends that hold no state vector
#: (the classical scans and the analytic model) — one row costs a report's
#: worth of scalars, so the byte budget effectively never shards them.
STATELESS_ROW_BYTES = 4096


def state_row_bytes(
    backend: str, n_items: int, policy: ExecutionPolicy | None = None
) -> int:
    """Estimated working-set bytes one batch row costs on *backend*.

    The kernels path holds a real row of ``N`` amplitudes; the circuit
    backends hold a complex row of ``2N`` (ancilla doubles the space); both
    are scaled by :data:`ROW_OVERHEAD` for kernel temporaries and by the
    policy's dtype width — ``dtype="complex64"`` halves every amplitude, so
    a fixed shard byte budget admits **2x the rows per shard**.  Stateless
    backends (``classical``, ``analytic``) cost
    :data:`STATELESS_ROW_BYTES` regardless of ``N``.
    """
    scale = 1.0 if policy is None else policy.itemsize_scale
    if backend in CIRCUIT_BACKENDS:
        return int(2 * n_items * 16 * ROW_OVERHEAD * scale)
    if backend == KERNEL_BACKEND:
        return int(n_items * 8 * ROW_OVERHEAD * scale)
    return STATELESS_ROW_BYTES


@dataclass(frozen=True)
class ExecutionPlan:
    """A resolved sharding decision for one batched execution.

    Attributes:
        n_rows: total batch rows ``B``.
        shard_rows: rows per shard ``B_chunk`` (last shard may be smaller).
        row_bytes: modelled working-set bytes per row.
        max_bytes: the policy budget the plan was fitted to.
        workers: process-pool width (1 = serial in-process).
        policy: the :class:`~repro.kernels.ExecutionPolicy` the shards
            execute under (dtype scales ``row_bytes``; ``row_threads`` fans
            rows inside each shard).
    """

    n_rows: int
    shard_rows: int
    row_bytes: int
    max_bytes: int
    workers: int
    policy: ExecutionPolicy = field(default_factory=ExecutionPolicy)

    @property
    def n_shards(self) -> int:
        """Number of shards the batch splits into."""
        return -(-self.n_rows // self.shard_rows)

    @property
    def shard_bytes(self) -> int:
        """Modelled peak working set of one full shard."""
        return self.shard_rows * self.row_bytes

    def slices(self):
        """Yield one ``slice`` per shard, covering ``range(n_rows)`` in order."""
        for start in range(0, self.n_rows, self.shard_rows):
            yield slice(start, min(start + self.shard_rows, self.n_rows))

    def describe(self) -> dict:
        """Provenance record embedded in :class:`BatchReport.execution`."""
        return {
            "n_rows": self.n_rows,
            "n_shards": self.n_shards,
            "shard_rows": self.shard_rows,
            "row_bytes": self.row_bytes,
            "shard_bytes": self.shard_bytes,
            "max_bytes": self.max_bytes,
            "workers": self.workers,
            **self.policy.describe(),
        }


def plan_shards(
    n_rows: int,
    n_items: int,
    backend: str,
    policy: ShardPolicy | None = None,
    execution: ExecutionPolicy | None = None,
) -> ExecutionPlan:
    """Fit a shard plan for ``n_rows`` batch rows of an ``N``-item instance.

    The row count per shard is the largest that keeps the modelled working
    set under ``policy.max_bytes`` (clamped to ``[1, n_rows]`` — a single
    row always runs even if it alone exceeds the budget), further capped by
    ``policy.max_rows`` when set.  With ``policy.workers > 1`` the rows are
    additionally capped at an even split across the pool, so a batch whose
    byte budget would fit in one shard still fans out.  *execution* (the
    kernels' :class:`~repro.kernels.ExecutionPolicy`) scales the per-row
    byte model — complex64 rows are half-width, so the same budget admits
    twice the ``B_chunk`` — and rides on the plan so shards execute under
    it.
    """
    if n_rows < 1:
        raise ValueError("n_rows must be >= 1")
    if policy is None:
        policy = ShardPolicy()
    if execution is None:
        execution = ExecutionPolicy()
    row_bytes = state_row_bytes(backend, n_items, execution)
    rows = max(1, policy.max_bytes // row_bytes)
    if policy.max_rows is not None:
        rows = min(rows, policy.max_rows)
    if policy.workers > 1:
        rows = min(rows, -(-n_rows // policy.workers))
    rows = int(min(rows, n_rows))
    # Pin backend="auto" and row_threads="auto" to concrete choices here,
    # once, so every shard of the batch — local or remote — runs the same
    # kernels at the same width and the plan's provenance records what
    # actually ran.  The resolved shard size makes row_threads
    # workload-aware: tiny slabs stay serial (the 0.884x bench regression).
    execution = execution.resolve(slab_bytes=rows * row_bytes // ROW_OVERHEAD)
    return ExecutionPlan(
        n_rows=n_rows,
        shard_rows=rows,
        row_bytes=row_bytes,
        max_bytes=policy.max_bytes,
        workers=policy.workers,
        policy=execution,
    )


def _grk_shard(task, rng):
    """Execute one GRK shard (module-level so process pools can pickle it).

    ``rng`` is the :func:`parallel_map` per-task generator; the GRK batch is
    deterministic so it goes unused — shard results are bit-identical
    regardless of worker count or scheduling order.  The task carries the
    :class:`~repro.kernels.ExecutionPolicy` (wire-format payload field since
    protocol v2), so remote workers execute at the requested dtype and row
    parallelism.
    """
    schedule, targets, backend, execution = task
    from repro.core.batch import execute_batch_rows

    return execute_batch_rows(schedule, targets, backend, execution)


def run_grk_batch_sharded(
    schedule,
    targets: np.ndarray,
    backend: str,
    policy: ShardPolicy | None = None,
    executor=None,
    execution: ExecutionPolicy | None = None,
) -> tuple[np.ndarray, np.ndarray, ExecutionPlan]:
    """Run the GRK batch over *targets* in memory-bounded shards.

    Returns ``(success_probabilities, block_guesses, plan)`` with the arrays
    concatenated in target order — bit-identical to the unsharded execution,
    because every batch row evolves independently under the same kernels.
    *executor* selects where shards run (``None`` = the default local
    executor); every executor preserves bit-identity because shard
    boundaries are fixed here, before dispatch.  *execution* is the kernels'
    :class:`~repro.kernels.ExecutionPolicy`: it sizes the shards (complex64
    halves row bytes) and ships inside every shard task, so local and remote
    workers honour the same dtype/threading — at complex128 the results stay
    bit-identical for every policy combination.
    """
    from repro.service.executor import default_executor

    targets = np.asarray(targets, dtype=np.intp)
    if execution is None:
        execution = ExecutionPolicy()
    with span("shards.plan", backend=backend) as planned:
        plan = plan_shards(
            targets.size, schedule.spec.n_items, backend, policy, execution
        )
        execution = plan.policy  # "auto" resolved by the planner
        tasks = [
            (schedule, targets[sl], backend, execution) for sl in plan.slices()
        ]
        planned.attrs["shards"] = plan.n_shards
    if executor is None:
        executor = default_executor()
    results = executor.run_shards(_grk_shard, tasks, workers=plan.workers)
    with span("merge", shards=len(results)):
        success = np.concatenate([r[0] for r in results])
        guesses = np.concatenate([r[1] for r in results])
    return success, guesses, plan


def _simplified_shard(task, rng):
    """One Korepin–Grover-simplified shard (module-level: pools pickle it).

    Deterministic like the GRK batch, so the per-task *rng* goes unused and
    results are bit-identical for any executor or worker count; the shipped
    :class:`~repro.kernels.ExecutionPolicy` is honoured like in
    :func:`_grk_shard`.
    """
    schedule, targets, execution = task
    from repro.core.simplified import execute_simplified_batch_rows

    return execute_simplified_batch_rows(schedule, targets, execution)


def run_simplified_batch_sharded(
    schedule,
    targets: np.ndarray,
    policy: ShardPolicy | None = None,
    executor=None,
    execution: ExecutionPolicy | None = None,
) -> tuple[np.ndarray, np.ndarray, ExecutionPlan]:
    """Sharded all-targets batch of the simplified algorithm (kernels only).

    Same contract as :func:`run_grk_batch_sharded`: memory-bounded
    ``(B_chunk, N)`` shards, dispatched through *executor* under the
    *execution* policy, bit-identical to the unsharded execution at
    complex128.
    """
    from repro.service.executor import default_executor

    targets = np.asarray(targets, dtype=np.intp)
    if execution is None:
        execution = ExecutionPolicy()
    with span("shards.plan", backend=KERNEL_BACKEND) as planned:
        plan = plan_shards(
            targets.size, schedule.spec.n_items, KERNEL_BACKEND, policy,
            execution,
        )
        execution = plan.policy  # "auto" resolved by the planner
        tasks = [(schedule, targets[sl], execution) for sl in plan.slices()]
        planned.attrs["shards"] = plan.n_shards
    if executor is None:
        executor = default_executor()
    results = executor.run_shards(_simplified_shard, tasks, workers=plan.workers)
    with span("merge", shards=len(results)):
        success = np.concatenate([r[0] for r in results])
        guesses = np.concatenate([r[1] for r in results])
    return success, guesses, plan
