"""Typed report objects: one normalized answer shape for every method.

Every runner in the library answers the same question — which block holds
the target, at what query cost — but each historically returned its own
dataclass.  :class:`SearchReport` normalizes the answer (block guess,
success probability, queries) and records full provenance: which method and
backend produced it and under what schedule.  The raw method-specific
result object rides along in ``raw`` for callers that need the extra
fields (amplitudes, traces, per-level accounting, ...).

:class:`BatchReport` is the batched analogue, additionally recording the
execution plan (shard sizes, worker count) that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = ["SearchReport", "BatchReport"]


@dataclass(frozen=True)
class SearchReport:
    """Normalized outcome of one :meth:`SearchEngine.search` call.

    Attributes:
        method: registry name of the method that ran.
        backend: backend name that executed it (resolved, never ``None``).
        n_items: database size ``N``.
        n_blocks: block count ``K`` (1 = full search, no block structure).
        block_guess: the answered block index, or ``None`` for analytic
            methods evaluated without a concrete target.
        success_probability: exact probability the answer is correct (from
            the final distribution where available, not sampled).
        queries: oracle/database queries this run spent (for analytic
            methods: the queries the modelled run *would* spend).
        schedule: provenance of the executed schedule — method-specific
            keys such as ``l1``/``l2``/``epsilon``/``iterations``/``phases``.
        answer: method-native answer (full address for ``grover-full`` and
            ``classical``; equals ``block_guess`` for block methods).
        raw: the method's original result object (``PartialSearchResult``,
            ``GroverResult``, ...), for callers needing amplitudes/traces.
    """

    method: str
    backend: str
    n_items: int
    n_blocks: int
    block_guess: int | None
    success_probability: float
    queries: int
    schedule: Mapping[str, Any] = field(default_factory=dict)
    answer: int | None = None
    raw: Any = field(default=None, repr=False, compare=False)

    @property
    def failure_probability(self) -> float:
        """``1 - success`` clipped at 0 (sure-success runs can overshoot by
        a few ulp)."""
        return max(0.0, 1.0 - self.success_probability)

    @property
    def provenance(self) -> dict:
        """Flat ``{method, backend, schedule}`` provenance record."""
        return {
            "method": self.method,
            "backend": self.backend,
            "schedule": dict(self.schedule),
        }


@dataclass(frozen=True)
class BatchReport:
    """Normalized outcome of one :meth:`SearchEngine.search_batch` call.

    Attributes:
        method: registry name of the method that ran.
        backend: backend that executed the rows.
        n_items: database size ``N``.
        n_blocks: block count ``K``.
        targets: target address per row, shape ``(B,)``.
        success_probabilities: exact per-row success, shape ``(B,)``.
        block_guesses: per-row answered block, shape ``(B,)``.
        queries: per-row query counts, shape ``(B,)``.
        schedule: shared schedule provenance (as in :class:`SearchReport`).
        execution: the shard plan that ran — ``n_shards``, ``shard_rows``,
            ``row_bytes``, ``max_bytes``, ``workers``.
    """

    method: str
    backend: str
    n_items: int
    n_blocks: int
    targets: np.ndarray
    success_probabilities: np.ndarray
    block_guesses: np.ndarray
    queries: np.ndarray
    schedule: Mapping[str, Any] = field(default_factory=dict)
    execution: Mapping[str, Any] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        """Batch size ``B``."""
        return int(self.targets.size)

    @property
    def queries_per_run(self) -> float:
        """Mean per-row query cost (constant across rows for ``grk``)."""
        return float(np.mean(self.queries))

    @property
    def worst_success(self) -> float:
        """Minimum success probability across the batch."""
        return float(self.success_probabilities.min())

    @property
    def all_correct(self) -> bool:
        """Did every row's most-likely block equal its target's block?"""
        true_blocks = self.targets // (self.n_items // self.n_blocks)
        return bool(np.all(self.block_guesses == true_blocks))

    @property
    def provenance(self) -> dict:
        """Flat ``{method, backend, schedule, execution}`` record."""
        return {
            "method": self.method,
            "backend": self.backend,
            "schedule": dict(self.schedule),
            "execution": dict(self.execution),
        }
