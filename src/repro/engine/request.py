"""Typed request objects: everything a search needs, in one validated value.

A :class:`SearchRequest` pins down the instance geometry ``(N, K)``, the
method and backend names (resolved against the registries at execution
time, not here), the Step 1 parameter, tracing, randomness, and the
batch/shard policy.  A :class:`ShardPolicy` bounds how much state a batched
execution may hold in memory at once and whether shards fan out across a
process pool.

Validation philosophy: structural facts that cannot depend on the registry
(geometry, ranges, types) are checked eagerly in ``__post_init__`` so a bad
request fails at construction; method/backend compatibility is checked by
:class:`~repro.engine.engine.SearchEngine` at dispatch time, so requests can
be built before custom methods are registered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

from repro.core.blockspec import BlockSpec
from repro.kernels import ExecutionPolicy

__all__ = [
    "DEFAULT_SHARD_BYTES",
    "WANTS_VALUES",
    "ENGINE_VALUES",
    "ExecutionPolicy",
    "ShardPolicy",
    "SearchRequest",
]

#: Default per-shard memory budget for batched execution (128 MiB).  An
#: all-targets batch at 12 address qubits needs a ``(4096, 8192)`` complex
#: state (~0.5 GB) unsharded; this budget splits it into independent chunks.
DEFAULT_SHARD_BYTES = 128 * 1024 * 1024

#: What the caller needs back.  ``probability``-class requests (success
#: probability + query count, no amplitudes) are eligible for the analytic
#: tier; the rest always simulate.
WANTS_VALUES = ("probability", "report", "amplitudes", "samples")

#: Engine-tier override, threaded like ``backend=``: ``auto`` lets the
#: planner route, ``analytic``/``simulate`` force the tier.
ENGINE_VALUES = ("auto", "analytic", "simulate")


@dataclass(frozen=True)
class ShardPolicy:
    """Memory/parallelism policy for :meth:`SearchEngine.search_batch`.

    Attributes:
        max_bytes: soft ceiling on the working-set bytes of one shard
            (state matrix plus kernel temporaries).  The planner converts it
            into a row count per shard; at least one row always runs.
        max_rows: optional hard cap on rows per shard (useful in tests to
            force specific shard boundaries regardless of the byte budget).
        workers: ``1`` (default) executes shards serially in-process;
            ``> 1`` fans them across a process pool via
            :func:`repro.util.parallel.parallel_map`.
    """

    max_bytes: int = DEFAULT_SHARD_BYTES
    max_rows: int | None = None
    workers: int = 1

    def __post_init__(self):
        if self.max_bytes <= 0:
            raise ValueError(f"max_bytes={self.max_bytes} must be positive")
        if self.max_rows is not None and self.max_rows <= 0:
            raise ValueError(f"max_rows={self.max_rows} must be positive")
        if self.workers < 1:
            raise ValueError(f"workers={self.workers} must be >= 1")


@dataclass(frozen=True)
class SearchRequest:
    """One fully-specified partial-search problem instance.

    Attributes:
        n_items: database size ``N`` (>= 2).
        n_blocks: block count ``K``.  Must divide ``N``.  ``K >= 2`` for the
            partial-search methods; ``K = 1`` is allowed and means "no block
            structure" (only the ``grover-full`` method accepts it).
        method: registry name of the algorithm (see
            :data:`repro.engine.registry.available_methods`).
        backend: execution backend name, or ``None`` for the method's
            default.  Compatibility is validated at dispatch.
        epsilon: Step 1 stopping parameter in ``(0, 1)``; ``None`` uses the
            optimal value for this ``K`` (methods that have no epsilon
            ignore it).
        target: the marked address, for engines that synthesise the database
            themselves.  ``None`` is allowed when the caller passes an
            explicit database to :meth:`SearchEngine.search` (or for
            target-independent methods like ``subspace``).
        trace: request stage snapshots (methods that cannot trace raise).
        rng: seed or ``numpy.random.Generator`` for stochastic methods.
        shards: the batch/shard policy (see :class:`ShardPolicy`).
        policy: the :class:`~repro.kernels.ExecutionPolicy` (amplitude
            dtype, row threads, kernel backend) the kernels execute under.
            The default is complex128 / single-threaded / numpy —
            bit-identical to the seed implementation; ``dtype="complex64"``
            halves shard memory (the planner admits 2x the rows per shard)
            at the documented tolerance, ``row_threads > 1`` fans
            independent batch rows across a thread pool with no effect on
            results, and ``backend`` selects the kernel backend (``fused``
            and ``numba`` accelerate the sweeps; complex128 results stay
            bit-identical across backends).  Travels with the request
            across process pools and the service wire, so remote workers
            honour it too.
        options: method-specific extras (e.g. ``schedule=`` for ``grk``,
            ``plan=`` for ``grk-sure-success``, ``strategy=`` for
            ``classical``).  Stored read-only.
        wants: what the caller needs back — one of
            :data:`WANTS_VALUES`.  ``"probability"`` asks only for the
            success probability and query count, which lets the planner
            answer from the closed-form analytic tier at any ``N``;
            ``"report"`` (default) keeps the historical contract (a full
            simulated report with ``raw`` attached); ``"amplitudes"`` and
            ``"samples"`` additionally pin the simulator tier explicitly.
        engine: tier override, one of :data:`ENGINE_VALUES`.  ``"auto"``
            (default) routes ``wants="probability"`` requests to the
            analytic tier when a model covers them and simulates
            otherwise; ``"analytic"`` forces the closed-form tier (errors
            if no model covers the request); ``"simulate"`` forces the
            statevector tier even for probability-class requests.
    """

    n_items: int
    n_blocks: int
    method: str = "grk"
    backend: str | None = None
    epsilon: float | None = None
    target: int | None = None
    trace: bool = False
    rng: Any = None
    shards: ShardPolicy = field(default_factory=ShardPolicy)
    policy: ExecutionPolicy = field(default_factory=ExecutionPolicy)
    options: Mapping[str, Any] = field(default_factory=dict)
    wants: str = "report"
    engine: str = "auto"

    def __post_init__(self):
        if not isinstance(self.method, str) or not self.method:
            raise ValueError("method must be a non-empty string")
        if self.n_items < 2:
            raise ValueError(f"n_items={self.n_items} must be >= 2")
        if self.n_blocks < 1:
            raise ValueError(f"n_blocks={self.n_blocks} must be >= 1")
        if self.n_items % self.n_blocks != 0:
            raise ValueError(
                f"n_blocks={self.n_blocks} must divide n_items={self.n_items}"
            )
        if self.epsilon is not None and not 0.0 < self.epsilon < 1.0:
            raise ValueError(f"epsilon={self.epsilon} must lie in (0, 1)")
        if self.target is not None and not 0 <= self.target < self.n_items:
            raise ValueError(
                f"target={self.target} out of range for n_items={self.n_items}"
            )
        if not isinstance(self.shards, ShardPolicy):
            raise ValueError("shards must be a ShardPolicy")
        if not isinstance(self.policy, ExecutionPolicy):
            raise ValueError("policy must be an ExecutionPolicy")
        if self.wants not in WANTS_VALUES:
            raise ValueError(
                f"wants={self.wants!r} must be one of {WANTS_VALUES}"
            )
        if self.engine not in ENGINE_VALUES:
            raise ValueError(
                f"engine={self.engine!r} must be one of {ENGINE_VALUES}"
            )
        # Freeze the options mapping so a shared request cannot drift.
        object.__setattr__(self, "options", MappingProxyType(dict(self.options)))

    @property
    def spec(self) -> BlockSpec | None:
        """The ``(N, K)`` geometry, or ``None`` when ``K = 1`` (no blocks)."""
        if self.n_blocks < 2:
            return None
        return BlockSpec(self.n_items, self.n_blocks)

    @property
    def block_size(self) -> int:
        """Addresses per block ``N/K`` (``N`` itself when ``K = 1``)."""
        return self.n_items // self.n_blocks

    def option(self, key: str, default: Any = None) -> Any:
        """Read one method-specific option with a default."""
        return self.options.get(key, default)

    def replace(self, **changes: Any) -> "SearchRequest":
        """A copy of this request with the given fields replaced."""
        from dataclasses import replace as _dc_replace

        if "options" not in changes:
            changes["options"] = dict(self.options)
        return _dc_replace(self, **changes)

    def to_fields(self) -> dict:
        """Plain-field form of this request (``options`` as a real dict).

        The frozen ``options`` proxy is not picklable, so anything that
        ships requests across process or host boundaries — the engine's
        process fan-out, the :mod:`repro.service` wire protocol — works
        with this form; :meth:`from_fields` rebuilds (and re-validates)
        the request on the other side.
        """
        return {
            "n_items": self.n_items,
            "n_blocks": self.n_blocks,
            "method": self.method,
            "backend": self.backend,
            "epsilon": self.epsilon,
            "target": self.target,
            "trace": self.trace,
            "rng": self.rng,
            "shards": self.shards,
            "policy": self.policy,
            "options": dict(self.options),
            "wants": self.wants,
            "engine": self.engine,
        }

    @classmethod
    def from_fields(cls, fields: Mapping[str, Any]) -> "SearchRequest":
        """Rebuild a request from :meth:`to_fields` output."""
        return cls(**fields)

    def __reduce__(self):
        # MappingProxyType makes the dataclass unpicklable by default; pickle
        # via the plain-field form so requests cross pools and sockets.
        return (_rebuild_request, (self.to_fields(),))


def _rebuild_request(fields: dict) -> "SearchRequest":
    """Module-level pickle hook for :meth:`SearchRequest.__reduce__`."""
    return SearchRequest.from_fields(fields)
