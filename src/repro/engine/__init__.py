"""``repro.engine`` — the unified search facade.

The repo grew ~10 entry points that all answer the same question — *which
block holds the target, at what query cost* — with incompatible signatures.
This package collapses them into one stable, extensible surface:

- :class:`SearchRequest` / :class:`ShardPolicy` — typed, validated inputs:
  geometry, method, backend, epsilon, tracing, rng, batch/shard policy;
- :class:`SearchReport` / :class:`BatchReport` — one normalized answer
  shape with full method/backend/schedule provenance;
- the **method registry** (:func:`register_method`, :func:`get_method`,
  :func:`available_methods`) mirroring the circuit backend registry: the
  built-ins are ``grk``, ``grk-simplified``, ``grk-sure-success``,
  ``grk-cwb``, ``naive-blocks``, ``grover-full``, ``classical``, and
  ``subspace``, and follow-on algorithms plug in as new registrations,
  not new top-level functions;
- :class:`SearchEngine` — ``search`` / ``search_batch`` / ``sweep``, with
  memory-bounded ``(B_chunk, N)`` sharding (:class:`ExecutionPlan`,
  default budget ≲128 MiB) and optional process fan-out for all-targets
  batches.

Quickstart::

    from repro.engine import SearchEngine, SearchRequest

    engine = SearchEngine()
    report = engine.search(
        SearchRequest(n_items=4096, n_blocks=4, target=2717, method="grk")
    )
    print(report.block_guess, report.queries, report.success_probability)
"""

from repro.engine.request import (
    DEFAULT_SHARD_BYTES,
    ExecutionPolicy,
    SearchRequest,
    ShardPolicy,
)
from repro.engine.report import BatchReport, SearchReport
from repro.engine.registry import (
    MethodSpec,
    available_methods,
    get_method,
    method_backends,
    register_method,
    unregister_method,
)
from repro.engine.plan import ExecutionPlan, plan_shards, state_row_bytes
from repro.engine.engine import SearchEngine
from repro.engine.methods import register_builtin_methods

register_builtin_methods(replace=True)

__all__ = [
    "DEFAULT_SHARD_BYTES",
    "ExecutionPolicy",
    "SearchRequest",
    "ShardPolicy",
    "SearchReport",
    "BatchReport",
    "MethodSpec",
    "register_method",
    "unregister_method",
    "get_method",
    "available_methods",
    "method_backends",
    "ExecutionPlan",
    "plan_shards",
    "state_row_bytes",
    "SearchEngine",
    "register_builtin_methods",
]
