"""The method registry: algorithms as data, mirroring the backend registry.

A *method* is one way of answering the partial-search question — the GRK
algorithm, its sure-success variant, the naive K−1-block baseline, full
Grover search, the classical scans, or the analytic subspace model.  Each
is described by a :class:`MethodSpec` naming its compatible backends and
its adapter callables, and registered under a stable string name.  Adding a
new algorithm (e.g. the Korepin–Grover simplified partial search of
quant-ph/0504157) is a :func:`register_method` call, not a new top-level
function: the :class:`~repro.engine.engine.SearchEngine` facade dispatches
on the registry and callers never grow a new signature.

The built-in methods are registered by :mod:`repro.engine.methods` when
:mod:`repro.engine` is imported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "MethodSpec",
    "register_method",
    "unregister_method",
    "get_method",
    "available_methods",
    "method_backends",
]


@dataclass(frozen=True)
class MethodSpec:
    """Registry entry for one search method.

    Attributes:
        name: stable registry key (kebab-case by convention).
        description: one-line summary shown in listings.
        backends: backend names this method can execute on, in preference
            order; the first entry is the default.
        run: adapter ``(request, backend, database) -> SearchReport``
            executing one search.  ``database`` is ``None`` for methods with
            ``needs_database=False``.
        native_batch: optional adapter
            ``(request, backend, targets) -> BatchReport`` for methods with
            a vectorised many-targets path (``grk``, ``subspace``).  Methods
            without one fall back to the engine's generic per-target loop.
        needs_database: whether :meth:`SearchEngine.search` must supply a
            counted database (from ``request.target`` or an explicit one).
        needs_blocks: whether the method requires ``K >= 2`` (everything
            except full search).
        supports_trace: whether ``request.trace=True`` is honoured.
        honours_policy: whether the method's runners thread the request's
            :class:`~repro.kernels.ExecutionPolicy` into their kernels.
            When ``False`` (the classical scans, the analytic model, and
            runners that pin float64 state) the engine normalises the
            request back to the default policy so shard plans and
            execution provenance stay truthful — a non-default policy is
            silently a no-op there, never a mis-sized shard.
    """

    name: str
    description: str
    backends: tuple[str, ...]
    run: Callable[..., Any]
    native_batch: Callable[..., Any] | None = None
    needs_database: bool = True
    needs_blocks: bool = True
    supports_trace: bool = False
    honours_policy: bool = True

    def __post_init__(self):
        if not self.name:
            raise ValueError("method name must be non-empty")
        if not self.backends:
            raise ValueError(f"method {self.name!r} must declare >= 1 backend")

    @property
    def default_backend(self) -> str:
        """The backend used when a request leaves ``backend=None``."""
        return self.backends[0]

    def resolve_backend(self, backend: str | None) -> str:
        """Validate *backend* against this method (``None`` -> default).

        Raises:
            ValueError: when the name is not among :attr:`backends`.
        """
        if backend is None:
            return self.default_backend
        if backend not in self.backends:
            raise ValueError(
                f"method {self.name!r} does not support backend {backend!r} "
                f"(supported: {', '.join(self.backends)})"
            )
        return backend


_METHODS: dict[str, MethodSpec] = {}


def register_method(spec: MethodSpec, *, replace: bool = False) -> MethodSpec:
    """Register *spec* under ``spec.name``; returns it for chaining.

    Raises:
        ValueError: when the name is taken and ``replace`` is not set.
    """
    if spec.name in _METHODS and not replace:
        raise ValueError(
            f"method {spec.name!r} is already registered (pass replace=True "
            "to override)"
        )
    _METHODS[spec.name] = spec
    return spec


def unregister_method(name: str) -> None:
    """Remove a registered method (primarily for tests of the registry)."""
    _METHODS.pop(name, None)


def get_method(name: str) -> MethodSpec:
    """Look up a method by registry name.

    Raises:
        ValueError: for unknown names, listing the known ones.
    """
    try:
        return _METHODS[name]
    except KeyError:
        known = ", ".join(sorted(_METHODS)) or "<none registered>"
        raise ValueError(f"unknown method {name!r} (known: {known})") from None


def available_methods() -> tuple[str, ...]:
    """Sorted names of every registered method."""
    return tuple(sorted(_METHODS))


def method_backends(name: str) -> tuple[str, ...]:
    """The backend names method *name* supports (default first)."""
    return get_method(name).backends
