"""The :class:`SearchEngine` facade — the single supported execution surface.

One object, three verbs:

- :meth:`SearchEngine.search` — one instance, one report;
- :meth:`SearchEngine.search_batch` — many targets, memory-bounded shards,
  optional process fan-out;
- :meth:`SearchEngine.sweep` — an ``(N, K, eps)`` grid via the analytic
  model, optionally cross-checked on the simulator.

The engine owns no physics: it validates the request against the method
registry (:mod:`repro.engine.registry`), resolves the backend, synthesises
the counted database when the caller did not supply one, and dispatches to
the registered adapter.  A new algorithm or backend is a registration, not
a new entry point.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.registry import MethodSpec, get_method
from repro.engine.report import BatchReport, SearchReport
from repro.engine.request import SearchRequest, ShardPolicy
from repro.oracle.database import Database, SingleTargetDatabase

__all__ = ["SearchEngine"]

#: Largest ``N`` a ``simulate=True`` sweep will run on the full simulator.
SWEEP_SIMULATE_MAX_ITEMS = 4096


def _require_blocks(spec: MethodSpec, request: SearchRequest) -> None:
    if spec.needs_blocks and request.n_blocks < 2:
        raise ValueError(
            f"method {spec.name!r} needs a block structure (n_blocks >= 2), "
            f"got n_blocks={request.n_blocks}"
        )


class SearchEngine:
    """Facade dispatching :class:`SearchRequest` objects onto the registry.

    Args:
        shards: default :class:`ShardPolicy` applied when a request carries
            the stock policy (engine-level override for deployments that
            want a different budget everywhere).
        executor: :class:`repro.service.executor.ShardExecutor` batched
            executions dispatch their shards through.  ``None`` uses the
            in-process/process-pool default
            (:class:`~repro.service.executor.LocalExecutor`); pass a
            :class:`~repro.service.executor.RemoteExecutor` to fan shards
            out to ``repro-worker`` hosts.  Results are bit-identical
            whatever the executor: shard boundaries and per-target RNG
            streams are fixed before dispatch.

    The engine is stateless apart from those defaults — it is cheap to
    construct and safe to share.
    """

    def __init__(self, shards: ShardPolicy | None = None, executor=None):
        self._default_shards = shards
        self._executor = executor

    @property
    def executor(self):
        """The resolved shard executor this engine dispatches through."""
        if self._executor is None:
            from repro.service.executor import default_executor

            return default_executor()
        return self._executor

    # ----------------------------------------------------------- plumbing
    def _engine_tier(self, request: SearchRequest) -> str:
        """``"analytic"`` or ``"simulate"`` for *request*.

        The fast path avoids importing :mod:`repro.analytic` at all for
        the overwhelmingly common case (default ``wants="report"`` under
        ``engine="auto"``, or an explicit ``engine="simulate"``).  A
        forced ``engine="analytic"`` that no model covers raises
        :class:`~repro.analytic.AnalyticUnsupported` here.
        """
        if request.engine == "simulate":
            return "simulate"
        if request.engine == "auto" and (
            request.wants != "probability" or request.trace
        ):
            return "simulate"
        from repro.analytic import resolve_engine_tier

        return resolve_engine_tier(request)

    def _resolve(self, request: SearchRequest) -> tuple[MethodSpec, str]:
        spec = get_method(request.method)
        backend = spec.resolve_backend(request.backend)
        _require_blocks(spec, request)
        if request.trace and not spec.supports_trace:
            raise ValueError(f"method {request.method!r} does not support tracing")
        return spec, backend

    def _effective_request(
        self, request: SearchRequest, spec: MethodSpec | None = None
    ) -> SearchRequest:
        if self._default_shards is not None and request.shards == ShardPolicy():
            request = request.replace(shards=self._default_shards)
        # Methods whose runners ignore the ExecutionPolicy get it
        # normalised away: otherwise a complex64 request would halve the
        # planner's row-byte model (2x the budgeted shard memory, since
        # the state stays float64) and stamp a dtype into the provenance
        # that was never used.
        if spec is not None and not spec.honours_policy and not request.policy.is_default:
            from repro.kernels import ExecutionPolicy

            request = request.replace(policy=ExecutionPolicy())
        return request

    def _database_for(
        self, spec: MethodSpec, request: SearchRequest, database: Database | None
    ) -> Database | None:
        if database is not None:
            if database.n_items != request.n_items:
                raise ValueError(
                    f"database has {database.n_items} items but the request "
                    f"says n_items={request.n_items}"
                )
            return database
        if not spec.needs_database:
            return None
        if request.target is None:
            raise ValueError(
                f"method {request.method!r} needs request.target or an "
                "explicit database= argument"
            )
        return SingleTargetDatabase(request.n_items, request.target)

    # ------------------------------------------------------------- search
    def search(
        self, request: SearchRequest, database: Database | None = None
    ) -> SearchReport:
        """Execute one search described by *request*.

        Args:
            request: the typed problem description.
            database: optional counted database to run against (its counter
                accumulates this run's queries, enabling shared-budget
                experiments).  When omitted, a fresh
                :class:`~repro.oracle.database.SingleTargetDatabase` is
                built from ``request.target``.

        Returns:
            :class:`SearchReport` — normalized answer plus provenance.
        """
        spec, backend = self._resolve(request)
        request = self._effective_request(request, spec)
        if self._engine_tier(request) == "analytic":
            from repro.analytic import AnalyticUnsupported, evaluate_analytic

            try:
                return evaluate_analytic(request, database)
            except AnalyticUnsupported:
                # Evaluation-time refusal (e.g. a phase solve that did not
                # converge): forced analytic propagates it, auto falls
                # through to the simulator tier.
                if request.engine == "analytic":
                    raise
        db = self._database_for(spec, request, database)
        return spec.run(request, backend, db)

    # ------------------------------------------------------- search_batch
    def search_batch(
        self, request: SearchRequest, targets=None
    ) -> BatchReport:
        """Execute one independent search per target, sharded by memory.

        Args:
            request: shared problem description (``request.target`` is
                ignored; per-row targets come from *targets*).
            targets: 1-D collection of target addresses; ``None`` means
                *every* address of the instance (the all-targets sweep).

        The batch splits into ``(B_chunk, N)`` shards sized by
        ``request.shards`` (default budget ≲128 MiB) so all-targets sweeps
        at 12 address qubits no longer allocate a 0.5 GB state matrix;
        results are bit-identical to the unsharded execution.  With
        ``request.shards.workers > 1`` shards fan out across a process
        pool.  Methods without a vectorised path run a per-target loop
        inside the same shard structure; their per-target RNG streams are
        spawned from ``request.rng`` *before* sharding, so stochastic
        results are likewise invariant to shard boundaries and worker
        count.

        Returns:
            :class:`BatchReport` with per-row success/guess/query arrays.
        """
        spec, backend = self._resolve(request)
        request = self._effective_request(request, spec)
        if request.trace:
            raise ValueError("batched execution does not support tracing")
        if self._engine_tier(request) == "analytic":
            from repro.analytic import (
                AnalyticUnsupported,
                evaluate_analytic_batch,
            )

            try:
                return evaluate_analytic_batch(request, targets)
            except AnalyticUnsupported:
                if request.engine == "analytic":
                    raise
        if targets is None:
            targets = np.arange(request.n_items, dtype=np.intp)
        else:
            targets = np.asarray(list(targets), dtype=np.intp)
        if targets.ndim != 1 or targets.size == 0:
            raise ValueError("targets must be a non-empty 1-D collection")
        if targets.min() < 0 or targets.max() >= request.n_items:
            raise ValueError("targets out of address range")
        if spec.native_batch is not None:
            return self._call_native_batch(spec, request, backend, targets)
        return self._generic_batch(spec, request, backend, targets)

    def _call_native_batch(
        self,
        spec: MethodSpec,
        request: SearchRequest,
        backend: str,
        targets: np.ndarray,
    ) -> BatchReport:
        """Invoke a native batch adapter, threading the engine's executor
        through when the adapter accepts one (older three-argument adapters
        registered by external code keep working unchanged)."""
        import inspect

        try:
            params = inspect.signature(spec.native_batch).parameters
            takes_executor = "executor" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
            )
        except (TypeError, ValueError):  # builtins/partials without signatures
            takes_executor = False
        if takes_executor:
            return spec.native_batch(
                request, backend, targets, executor=self.executor
            )
        return spec.native_batch(request, backend, targets)

    def _generic_batch(
        self,
        spec: MethodSpec,
        request: SearchRequest,
        backend: str,
        targets: np.ndarray,
    ) -> BatchReport:
        """Per-target fallback for methods without a vectorised batch.

        Single-target methods hold one state row at a time, so the shard
        plan degenerates to work chunking — but it still drives the process
        fan-out and keeps the report's execution provenance uniform.
        """
        from repro.engine.plan import plan_shards
        from repro.observability.spans import span
        from repro.util.rng import spawn_rngs

        with span("shards.plan", backend=backend) as planned:
            plan = plan_shards(
                targets.size, request.n_items, backend, request.shards,
                request.policy,
            )
            planned.attrs["shards"] = plan.n_shards
        # Plain-field task payloads: requests carry a read-only options proxy
        # that process pools cannot pickle, so shards rebuild the request.
        base_fields = {
            "n_items": request.n_items,
            "n_blocks": request.n_blocks,
            "method": request.method,
            "epsilon": request.epsilon,
            "policy": plan.policy,  # "auto" row_threads resolved by the plan
            "options": dict(request.options),
        }
        # One independent stream per *target*, spawned before sharding, so
        # stochastic methods give the same per-row results whatever the
        # shard policy or worker count (numpy Generators pickle fine).
        # The resolved MethodSpec ships in the payload: worker processes
        # import a fresh registry, so re-resolving by name there would
        # silently drop custom/replaced registrations.
        rngs = spawn_rngs(request.rng, targets.size)
        tasks = [
            (spec, base_fields, backend, targets[sl], rngs[sl])
            for sl in plan.slices()
        ]
        results = self.executor.run_shards(
            _run_single_target_shard, tasks, workers=plan.workers
        )
        with span("merge", shards=len(results)):
            success = np.concatenate([r[0] for r in results])
            guesses = np.concatenate([r[1] for r in results])
            queries = np.concatenate([r[2] for r in results])
        schedule: dict = {}
        return BatchReport(
            method=request.method,
            backend=backend,
            n_items=request.n_items,
            n_blocks=request.n_blocks,
            targets=targets,
            success_probabilities=success,
            block_guesses=guesses,
            queries=queries,
            schedule=schedule,
            execution={**plan.describe(), **self.executor.describe()},
        )

    # -------------------------------------------------------------- sweep
    def sweep(
        self,
        n_items_values,
        n_blocks_values,
        epsilon: float | None = None,
        *,
        simulate: bool = False,
        backend: str = "compiled",
        shards: ShardPolicy | None = None,
        simulate_max_items: int = SWEEP_SIMULATE_MAX_ITEMS,
    ) -> list[dict]:
        """Exact schedule/query/success grid via the subspace model.

        Returns one row per ``(N, K)`` with keys ``n_items``, ``n_blocks``,
        ``epsilon``, ``l1``, ``l2``, ``queries``, ``coefficient``
        (``queries/sqrt(N)``), ``success``, ``failure``.  Pairs where ``K``
        does not divide ``N`` are skipped.

        With ``simulate=True`` each cell with ``N <= simulate_max_items``
        is additionally executed for *every* target through
        :meth:`search_batch` on the given *backend* (cells whose geometry
        the circuit backends cannot express fall back to ``"kernels"``),
        adding keys ``sim_worst_success`` (min over targets) and
        ``sim_all_correct``; the all-targets batches run under the shard
        policy, so big cells stay memory-bounded.  Cells too large to
        simulate get ``None`` there.
        """
        from repro.core.backends import validate_backend
        from repro.core.blockspec import BlockSpec
        from repro.core.parameters import plan_schedule
        from repro.core.subspace import SubspaceGRK
        from repro.util.bits import is_power_of_two

        if simulate:
            validate_backend(backend)
        if shards is None:
            shards = self._default_shards or ShardPolicy()
        rows = []
        for n in n_items_values:
            for k in n_blocks_values:
                if k < 2 or n % k != 0 or n // k < 2:
                    continue
                schedule = plan_schedule(n, k, epsilon)
                model = SubspaceGRK(BlockSpec(n, k))
                failure = model.failure_probability(schedule.l1, schedule.l2)
                row = {
                    "n_items": n,
                    "n_blocks": k,
                    "epsilon": schedule.epsilon,
                    "l1": schedule.l1,
                    "l2": schedule.l2,
                    "queries": schedule.queries,
                    "coefficient": schedule.queries / math.sqrt(n),
                    "success": schedule.predicted_success,
                    "failure": failure,
                }
                if simulate:
                    row["sim_worst_success"] = None
                    row["sim_all_correct"] = None
                    if n <= simulate_max_items:
                        cell_backend = backend
                        if cell_backend != "kernels" and not (
                            is_power_of_two(n) and is_power_of_two(k)
                        ):
                            cell_backend = "kernels"
                        report = self.search_batch(
                            SearchRequest(
                                n_items=n,
                                n_blocks=k,
                                method="grk",
                                backend=cell_backend,
                                shards=shards,
                                options={"schedule": schedule},
                            )
                        )
                        row["sim_worst_success"] = report.worst_success
                        row["sim_all_correct"] = report.all_correct
                rows.append(row)
        return rows


def _run_single_target_shard(task, rng):
    """One generic-fallback shard: loop the single-run adapter per target.

    Module-level so process pools can pickle it.  The shard carries one
    pre-spawned generator per target (derived from the request's seed
    *before* sharding), so per-row randomness — and therefore results — do
    not depend on shard boundaries or worker count; the per-shard *rng*
    argument from :func:`parallel_map` goes unused.  The parent already
    validated the request and resolved the method, so the shard calls the
    shipped adapter directly instead of consulting the worker's registry.
    """
    spec, base_fields, backend, targets, target_rngs = task
    success = np.empty(targets.size)
    guesses = np.empty(targets.size, dtype=np.intp)
    queries = np.empty(targets.size, dtype=np.intp)
    for i, t in enumerate(targets):
        request = SearchRequest(
            backend=backend, target=int(t), rng=target_rngs[i], **base_fields
        )
        database = (
            SingleTargetDatabase(request.n_items, int(t))
            if spec.needs_database
            else None
        )
        report = spec.run(request, backend, database)
        success[i] = report.success_probability
        guesses[i] = -1 if report.block_guess is None else report.block_guess
        queries[i] = report.queries
    return success, guesses, queries
