"""Built-in method adapters: every existing runner behind one report shape.

Each adapter translates a :class:`~repro.engine.request.SearchRequest` into
the underlying runner's native signature and normalizes the outcome into a
:class:`~repro.engine.report.SearchReport`.  The runners themselves stay
where they always lived (:mod:`repro.core`, :mod:`repro.grover`,
:mod:`repro.classical`) — the registry makes them *addressable*, it does
not re-implement them, so the existing property tests keep guarding the
physics.

Registered on import (importing :mod:`repro.engine` is enough):

==================  ====================================================
``grk``             the three-step GRK partial search (Figure 2);
                    backends ``kernels`` / ``compiled`` / ``naive``
``grk-simplified``  Korepin–Grover's ancilla-free simplification
                    (quant-ph/0504157) — same asymptotic query count
``grk-sure-success``  the phased sure-success variant (Theorem 1 remark)
``grk-cwb``         Choi–Walker–Braunstein sure success (quant-ph/0603136):
                    per-stage phase conditions, certainty within a
                    constant of the plain GRK budget
``naive-blocks``    Section 1.2's K−1-block quantum baseline
``grover-full``     standard full search (+ Long's exact variant)
``classical``       Section 1.1's deterministic/randomized scans
``subspace``        the analytic O(1) subspace model (no simulation)
==================  ====================================================
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.backends import CIRCUIT_BACKENDS, KERNEL_BACKEND
from repro.core.parameters import GRKSchedule, plan_schedule
from repro.engine.registry import MethodSpec, register_method
from repro.engine.report import BatchReport, SearchReport
from repro.engine.request import SearchRequest

__all__ = ["register_builtin_methods"]

#: Backend name for the classical scans (they run on the counted database
#: directly — no state vector is involved).
CLASSICAL_BACKEND = "classical"

#: Backend name for the closed-form subspace evaluation.
ANALYTIC_BACKEND = "analytic"


def _schedule_provenance(schedule: GRKSchedule) -> dict:
    return {
        "epsilon": schedule.epsilon,
        "l1": schedule.l1,
        "l2": schedule.l2,
        "queries": schedule.queries,
        "predicted_success": schedule.predicted_success,
    }


def _resolve_schedule(request: SearchRequest) -> GRKSchedule:
    """The request's explicit schedule, or the planned one for ``(N, K, eps)``."""
    schedule = request.option("schedule")
    if schedule is None:
        return plan_schedule(request.n_items, request.n_blocks, request.epsilon)
    spec = schedule.spec
    if spec.n_items != request.n_items or spec.n_blocks != request.n_blocks:
        raise ValueError(
            f"schedule is for (N={spec.n_items}, K={spec.n_blocks}), but the "
            f"request has (N={request.n_items}, K={request.n_blocks})"
        )
    return schedule


# --------------------------------------------------------------------------
# grk
# --------------------------------------------------------------------------

def _run_grk(request: SearchRequest, backend: str, database) -> SearchReport:
    from repro.core.algorithm import run_partial_search

    result = run_partial_search(
        database,
        request.n_blocks,
        request.epsilon,
        schedule=request.option("schedule"),
        trace=request.trace,
        backend=backend,
        policy=request.policy,
    )
    return SearchReport(
        method="grk",
        backend=backend,
        n_items=request.n_items,
        n_blocks=request.n_blocks,
        block_guess=result.block_guess,
        success_probability=result.success_probability,
        queries=result.queries,
        schedule=_schedule_provenance(result.schedule),
        answer=result.block_guess,
        raw=result,
    )


def _batch_grk(
    request: SearchRequest, backend: str, targets: np.ndarray, executor=None
) -> BatchReport:
    from repro.engine.plan import run_grk_batch_sharded

    schedule = _resolve_schedule(request)
    success, guesses, plan = run_grk_batch_sharded(
        schedule, targets, backend, request.shards,
        executor=executor, execution=request.policy,
    )
    execution = plan.describe()
    if executor is not None:
        execution.update(executor.describe())
    return BatchReport(
        method="grk",
        backend=backend,
        n_items=request.n_items,
        n_blocks=request.n_blocks,
        targets=targets,
        success_probabilities=success,
        block_guesses=guesses,
        queries=np.full(targets.size, schedule.queries, dtype=np.intp),
        schedule=_schedule_provenance(schedule),
        execution=execution,
    )


# --------------------------------------------------------------------------
# grk-simplified (Korepin–Grover, quant-ph/0504157)
# --------------------------------------------------------------------------

def _resolve_simplified_schedule(request: SearchRequest):
    from repro.core.simplified import SimplifiedSchedule, plan_simplified_schedule

    schedule = request.option("schedule")
    if schedule is None:
        return plan_simplified_schedule(request.n_items, request.n_blocks)
    if not isinstance(schedule, SimplifiedSchedule):
        raise ValueError(
            "grk-simplified takes a SimplifiedSchedule in options['schedule'] "
            f"(got {type(schedule).__name__})"
        )
    spec = schedule.spec
    if spec.n_items != request.n_items or spec.n_blocks != request.n_blocks:
        raise ValueError(
            f"schedule is for (N={spec.n_items}, K={spec.n_blocks}), but the "
            f"request has (N={request.n_items}, K={request.n_blocks})"
        )
    return schedule


def _simplified_provenance(schedule) -> dict:
    return {
        "j1": schedule.j1,
        "j2": schedule.j2,
        "queries": schedule.queries,
        "predicted_success": schedule.predicted_success,
    }


def _run_grk_simplified(request: SearchRequest, backend: str, database) -> SearchReport:
    from repro.core.simplified import run_simplified_partial_search

    result = run_simplified_partial_search(
        database, request.n_blocks,
        schedule=request.option("schedule"),
        policy=request.policy,
    )
    return SearchReport(
        method="grk-simplified",
        backend=backend,
        n_items=request.n_items,
        n_blocks=request.n_blocks,
        block_guess=result.block_guess,
        success_probability=result.success_probability,
        queries=result.queries,
        schedule=_simplified_provenance(result.schedule),
        answer=result.block_guess,
        raw=result,
    )


def _batch_grk_simplified(
    request: SearchRequest, backend: str, targets: np.ndarray, executor=None
) -> BatchReport:
    from repro.engine.plan import run_simplified_batch_sharded

    schedule = _resolve_simplified_schedule(request)
    success, guesses, plan = run_simplified_batch_sharded(
        schedule, targets, request.shards,
        executor=executor, execution=request.policy,
    )
    execution = plan.describe()
    if executor is not None:
        execution.update(executor.describe())
    return BatchReport(
        method="grk-simplified",
        backend=backend,
        n_items=request.n_items,
        n_blocks=request.n_blocks,
        targets=targets,
        success_probabilities=success,
        block_guesses=guesses,
        queries=np.full(targets.size, schedule.queries, dtype=np.intp),
        schedule=_simplified_provenance(schedule),
        execution=execution,
    )


# --------------------------------------------------------------------------
# grk-sure-success
# --------------------------------------------------------------------------

@lru_cache(maxsize=64)
def _cached_sure_success_plan(n_items: int, n_blocks: int, epsilon):
    """Target-independent phase solve, paid once per geometry.

    The sure-success families have no native batch path, so the engine's
    per-target fallback calls the adapter once per row — without this
    cache an all-targets sweep would repeat the identical multi-start
    least-squares solve N times.  Plans are frozen dataclasses, safe to
    share across rows, shards, and threads.
    """
    from repro.core.sure_success import plan_sure_success

    return plan_sure_success(n_items, n_blocks, epsilon)


def _run_sure_success(request: SearchRequest, backend: str, database) -> SearchReport:
    from repro.core.sure_success import run_sure_success_partial_search

    plan = request.option("plan")
    if plan is None:
        plan = _cached_sure_success_plan(
            request.n_items, request.n_blocks, request.epsilon
        )
    result = run_sure_success_partial_search(
        database, request.n_blocks, request.epsilon, plan=plan,
        policy=request.policy,
    )
    return SearchReport(
        method="grk-sure-success",
        backend=backend,
        n_items=request.n_items,
        n_blocks=request.n_blocks,
        block_guess=result.block_guess,
        success_probability=result.success_probability,
        queries=result.queries,
        schedule={
            "l1": plan.l1,
            "l2_base": plan.l2_base,
            "phases": list(plan.phases),
            "queries": plan.queries,
            "predicted_failure": plan.predicted_failure,
        },
        answer=result.block_guess,
        raw=result,
    )


# --------------------------------------------------------------------------
# grk-cwb (Choi–Walker–Braunstein, quant-ph/0603136)
# --------------------------------------------------------------------------

@lru_cache(maxsize=64)
def _cached_cwb_plan(n_items: int, n_blocks: int, epsilon):
    """CWB phase solve, paid once per geometry (see
    :func:`_cached_sure_success_plan` for why)."""
    from repro.core.cwb import plan_cwb

    return plan_cwb(n_items, n_blocks, epsilon)


def _run_cwb(request: SearchRequest, backend: str, database) -> SearchReport:
    from repro.core.cwb import run_cwb_partial_search

    plan = request.option("plan")
    if plan is None:
        plan = _cached_cwb_plan(request.n_items, request.n_blocks, request.epsilon)
    result = run_cwb_partial_search(
        database, request.n_blocks, request.epsilon, plan=plan,
        policy=request.policy,
    )
    return SearchReport(
        method="grk-cwb",
        backend=backend,
        n_items=request.n_items,
        n_blocks=request.n_blocks,
        block_guess=result.block_guess,
        success_probability=result.success_probability,
        queries=result.queries,
        schedule={
            "l1": plan.l1,
            "l2": plan.l2,
            "phases": list(plan.phases),
            "final_phase": plan.final_phase,
            "queries": plan.queries,
            "extra_queries": plan.extra_queries,
            "predicted_failure": plan.predicted_failure,
        },
        answer=result.block_guess,
        raw=result,
    )


# --------------------------------------------------------------------------
# naive-blocks
# --------------------------------------------------------------------------

def _run_naive_blocks(request: SearchRequest, backend: str, database) -> SearchReport:
    from repro.core.naive import run_naive_partial_search

    result = run_naive_partial_search(
        database,
        request.n_blocks,
        left_out_block=request.option("left_out_block"),
        iterations=request.option("iterations"),
        rng=request.rng,
    )
    return SearchReport(
        method="naive-blocks",
        backend=backend,
        n_items=request.n_items,
        n_blocks=request.n_blocks,
        block_guess=result.block_guess,
        success_probability=result.success_probability,
        queries=result.queries,
        schedule={
            "left_out_block": result.left_out_block,
            "iterations": result.queries - 1,  # quantum iterations + 1 probe
        },
        answer=result.block_guess,
        raw=result,
    )


# --------------------------------------------------------------------------
# grover-full
# --------------------------------------------------------------------------

def _run_grover_full(request: SearchRequest, backend: str, database) -> SearchReport:
    from repro.grover.exact import run_exact_grover
    from repro.grover.standard import run_grover

    exact = bool(request.option("exact", False))
    iterations = request.option("iterations")
    if exact:
        result = run_exact_grover(database, total_iterations=iterations)
    else:
        result = run_grover(database, iterations=iterations)
    return SearchReport(
        method="grover-full",
        backend=backend,
        n_items=request.n_items,
        n_blocks=request.n_blocks,
        block_guess=result.best_guess // request.block_size,
        success_probability=result.success_probability,
        queries=result.queries,
        schedule={"iterations": result.iterations, "exact": exact},
        answer=result.best_guess,
        raw=result,
    )


# --------------------------------------------------------------------------
# classical
# --------------------------------------------------------------------------

def _run_classical(request: SearchRequest, backend: str, database) -> SearchReport:
    from repro.classical.partial import (
        deterministic_partial_search,
        randomized_partial_search,
    )

    strategy = request.option("strategy", "deterministic")
    if strategy == "deterministic":
        result = deterministic_partial_search(
            database, request.n_blocks,
            left_out_block=request.option("left_out_block"),
        )
    elif strategy == "randomized":
        result = randomized_partial_search(database, request.n_blocks, rng=request.rng)
    else:
        raise ValueError(
            f"unknown classical strategy {strategy!r} "
            "(known: deterministic, randomized)"
        )
    return SearchReport(
        method="classical",
        backend=backend,
        n_items=request.n_items,
        n_blocks=request.n_blocks,
        block_guess=result.answer,
        success_probability=1.0 if result.correct else 0.0,  # zero-error scans
        queries=result.queries,
        schedule={"strategy": strategy},
        answer=result.answer,
        raw=result,
    )


# --------------------------------------------------------------------------
# subspace (analytic — no database, no state vector)
# --------------------------------------------------------------------------

def _run_subspace(request: SearchRequest, backend: str, database) -> SearchReport:
    from repro.core.blockspec import BlockSpec
    from repro.core.subspace import SubspaceGRK

    schedule = _resolve_schedule(request)
    model = SubspaceGRK(BlockSpec(request.n_items, request.n_blocks))
    final = model.final(schedule.l1, schedule.l2)
    failure = final.failure_probability(model.spec)
    target = request.target
    if target is None and database is not None:
        marked = database.reveal_marked()
        target = next(iter(marked)) if len(marked) == 1 else None
    return SearchReport(
        method="subspace",
        backend=backend,
        n_items=request.n_items,
        n_blocks=request.n_blocks,
        block_guess=None if target is None else target // request.block_size,
        success_probability=1.0 - failure,
        queries=schedule.queries,
        schedule=_schedule_provenance(schedule),
        answer=None if target is None else target // request.block_size,
        raw=final,
    )


def _batch_subspace(
    request: SearchRequest, backend: str, targets: np.ndarray
) -> BatchReport:
    from repro.core.blockspec import BlockSpec
    from repro.core.subspace import SubspaceGRK

    schedule = _resolve_schedule(request)
    model = SubspaceGRK(BlockSpec(request.n_items, request.n_blocks))
    failure = model.failure_probability(schedule.l1, schedule.l2)
    # The dynamics are symmetric in the target, so one O(1) evaluation
    # serves every row.
    success = np.full(targets.size, 1.0 - failure)
    return BatchReport(
        method="subspace",
        backend=backend,
        n_items=request.n_items,
        n_blocks=request.n_blocks,
        targets=targets,
        success_probabilities=success,
        block_guesses=targets // request.block_size,
        queries=np.full(targets.size, schedule.queries, dtype=np.intp),
        schedule=_schedule_provenance(schedule),
        execution={"n_shards": 1, "analytic": True},
    )


# --------------------------------------------------------------------------
# registration
# --------------------------------------------------------------------------

def register_builtin_methods(*, replace: bool = False) -> None:
    """Register the built-in methods (idempotent with ``replace=True``)."""
    register_method(
        MethodSpec(
            name="grk",
            description="three-step GRK partial search (Figure 2)",
            backends=(KERNEL_BACKEND, *CIRCUIT_BACKENDS),
            run=_run_grk,
            native_batch=_batch_grk,
            supports_trace=True,
        ),
        replace=replace,
    )
    register_method(
        MethodSpec(
            name="grk-simplified",
            description="Korepin-Grover simplified partial search "
                        "(quant-ph/0504157): no ancilla, plain final iteration",
            backends=(KERNEL_BACKEND,),
            run=_run_grk_simplified,
            native_batch=_batch_grk_simplified,
        ),
        replace=replace,
    )
    register_method(
        MethodSpec(
            name="grk-sure-success",
            description="phased GRK variant answering with certainty",
            backends=(KERNEL_BACKEND,),
            run=_run_sure_success,
        ),
        replace=replace,
    )
    register_method(
        MethodSpec(
            name="grk-cwb",
            description="Choi-Walker-Braunstein sure success "
                        "(quant-ph/0603136): per-stage phase conditions, "
                        "certainty within a constant of the GRK budget",
            backends=(KERNEL_BACKEND,),
            run=_run_cwb,
        ),
        replace=replace,
    )
    register_method(
        MethodSpec(
            name="naive-blocks",
            description="Section 1.2 baseline: Grover over K-1 blocks",
            backends=(KERNEL_BACKEND,),
            run=_run_naive_blocks,
            honours_policy=False,
        ),
        replace=replace,
    )
    register_method(
        MethodSpec(
            name="grover-full",
            description="standard full search (options: exact, iterations)",
            backends=(KERNEL_BACKEND,),
            run=_run_grover_full,
            needs_blocks=False,
            honours_policy=False,
        ),
        replace=replace,
    )
    register_method(
        MethodSpec(
            name="classical",
            description="Section 1.1 classical scans (deterministic/randomized)",
            backends=(CLASSICAL_BACKEND,),
            run=_run_classical,
            honours_policy=False,
        ),
        replace=replace,
    )
    register_method(
        MethodSpec(
            name="subspace",
            description="exact O(1) analytic model of the GRK schedule",
            backends=(ANALYTIC_BACKEND,),
            run=_run_subspace,
            native_batch=_batch_subspace,
            needs_database=False,
            honours_policy=False,
        ),
        replace=replace,
    )
