"""``repro-worker`` — a shard-execution server for :class:`RemoteExecutor`.

The worker listens on TCP, accepts any number of concurrent connections
(one thread each), and answers frames of the wire protocol
(:mod:`repro.service.wire`):

- ``("shard", func, task, rng[, meta])`` -> ``("result", func(task, rng))``,
  or ``("error", message)`` when the shard function raises.  The optional
  fifth element (wire v4) is a metadata dict; ``meta["deadline_s"]`` is the
  request's **remaining budget** in seconds, from which the worker rebuilds
  a local :class:`~repro.resilience.Deadline` — a shard whose budget
  arrives spent is answered ``("expired", message)`` without computing.
- ``("ping",)`` -> ``("pong", stats_dict)`` — liveness/health probe.

The worker is stateless between shards: everything a shard needs (schedule,
targets, pre-spawned RNG streams) arrives in the task payload, which is what
makes results bit-identical to local execution.  Functions are pickled by
reference (module + qualname), so the worker host needs the same ``repro``
version importable — deploy workers and drivers from the same build, and
bump :data:`repro.service.wire.WIRE_VERSION` on incompatible protocol
changes.

Run one per host::

    repro-worker --host 0.0.0.0 --port 7737

(or ``python -m repro.service.worker``).  With ``--register SERVER:PORT``
the worker **announces itself** to a running ``repro serve`` (one
``("register", "host:port")`` frame, retried until the server is up), so
the server's :class:`~repro.service.registry.WorkerRegistry` starts routing
shards here with no ``--remote-worker`` wiring; ``--advertise HOST:PORT``
overrides the announced address when the bind address is not what the
server should dial (0.0.0.0 binds, NAT).  Only expose workers to trusted
networks: frames are pickles and execute code by design.

**Graceful drain:** ``SIGTERM`` (or :meth:`WorkerServer.drain`) finishes
the in-flight shards, answers new shard requests ``("unavailable", ...)``
so dialers requeue them elsewhere, withdraws the registration with a
``deregister`` frame, and exits — a rolling restart never aborts a batch.

**Chaos:** ``--chaos-plan PLAN.json`` (or ``WorkerServer(chaos=...)``)
arms a seeded :class:`~repro.resilience.FaultPlan`; the worker consults it
at ``worker.recv`` (drop the connection before reading), ``worker.shard``
(crash / slow / deterministic raise), and ``worker.send`` (corrupt the
reply frame, or drop instead of replying).
"""

from __future__ import annotations

import argparse
import collections
import logging
import signal
import socket
import threading
import time
import traceback
import warnings

from repro.resilience import Deadline, FaultPlan, deadline_scope
from repro.service.address import format_address, parse_address
from repro.util.structlog import LOG_FORMATS, configure_logging
from repro.service.wire import (
    MIN_WIRE_VERSION,
    ConnectionClosed,
    WireError,
    _encode,
    recv_frame,
    recv_frame_ex,
    send_frame,
)

__all__ = [
    "WorkerServer",
    "register_with_server",
    "worker_registration_meta",
    "deregister_from_server",
    "start_reannounce_loop",
    "main",
]

#: Default seconds between registration re-announcements (see
#: :func:`start_reannounce_loop`).
DEFAULT_REANNOUNCE_INTERVAL = 30.0

DEFAULT_PORT = 7737

log = logging.getLogger("repro.service.worker")


class WorkerServer:
    """A blocking TCP worker; use :meth:`start` + :meth:`serve_forever`, or
    the context-manager form which serves on a background thread.

    Args:
        host: bind address (default loopback; use ``0.0.0.0`` for cluster use).
        port: bind port; ``0`` picks a free one (read it from :attr:`address`).
        chaos: a :class:`~repro.resilience.FaultPlan` consulted at the
            ``worker.recv`` / ``worker.shard`` / ``worker.send`` sites.
            ``None`` (default) injects nothing.
        backends: kernel backend names this worker executes (``None`` =
            every available backend on this host,
            :func:`repro.kernels.available_kernel_backends`).  A shard
            whose meta names a backend outside this set is answered
            ``("unavailable", ...)`` so the dialer requeues it on a worker
            that advertises it — the same compatible path draining uses.
        fail_after: **deprecated** — the pre-chaos fault hook; equivalent to
            ``chaos=FaultPlan.worker_crash(fail_after)``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 *, chaos: FaultPlan | None = None,
                 backends: tuple[str, ...] | None = None,
                 fail_after: int | None = None):
        if fail_after is not None:
            warnings.warn(
                "WorkerServer(fail_after=...) is deprecated; pass "
                "chaos=FaultPlan.worker_crash(n) instead",
                DeprecationWarning, stacklevel=2,
            )
            if chaos is not None:
                raise ValueError(
                    "pass either chaos= or the deprecated fail_after=, not both"
                )
            chaos = FaultPlan.worker_crash(fail_after)
        self._sock = socket.create_server((host, port), backlog=16)
        self._sock.settimeout(0.2)  # poll so shutdown is prompt
        self.address: tuple[str, int] = self._sock.getsockname()[:2]
        self.chaos = chaos
        if backends is None:
            from repro.kernels import available_kernel_backends

            backends = available_kernel_backends()
        self.backends: tuple[str, ...] = tuple(backends)
        self.shards_served = 0
        self.shards_expired = 0
        # Ring of the most recent trace IDs whose shards ran here (wire v4
        # meta["trace_id"]) — observability for tests and `grep trace=`.
        self.seen_trace_ids: collections.deque = collections.deque(maxlen=256)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._draining = False
        self._active_shards = 0
        # Live connections/threads only: handlers prune themselves on exit,
        # so a long-lived worker serving many short connections stays flat.
        self._threads: set[threading.Thread] = set()
        self._conns: set[socket.socket] = set()

    # ------------------------------------------------------------ lifecycle
    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`stop` is called."""
        log.info("repro-worker listening on %s:%d", *self.address)
        while not self._stop.is_set():
            try:
                conn, peer = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.settimeout(None)
            t = threading.Thread(
                target=self._serve_connection, args=(conn, peer), daemon=True
            )
            with self._lock:
                self._conns.add(conn)
                self._threads.add(t)
            t.start()
        self._sock.close()

    def start(self) -> "WorkerServer":
        """Serve on a daemon thread (returns immediately)."""
        self._accept_thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close every live connection, join the threads."""
        self._stop.set()
        with self._lock:
            conns, self._conns = self._conns, set()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        try:
            self._sock.close()
        except OSError:
            pass
        # The accept loop may still hold the listening description inside
        # its (timeout-bounded) accept syscall, which keeps the port in
        # LISTEN briefly after the close above.  Join it so a stop/drain
        # that returns really has released the port.
        thread = self._accept_thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=1.0)

    def drain(self, *, deregister: tuple[str, str] | None = None,
              timeout: float = 30.0) -> None:
        """Graceful shutdown: finish the in-flight shards, refuse new ones
        (``("unavailable", ...)`` — dialers requeue elsewhere), withdraw
        the registration, then :meth:`stop`.

        Args:
            deregister: ``(server_address, advertise_address)`` to withdraw
                from a ``repro serve`` registry; ``None`` skips it.
            timeout: seconds to wait for in-flight shards before stopping
                anyway.
        """
        self._draining = True
        cutoff = time.monotonic() + timeout
        while time.monotonic() < cutoff:
            with self._lock:
                if self._active_shards == 0:
                    break
            time.sleep(0.02)
        if deregister is not None:
            deregister_from_server(*deregister)
        self.stop()

    @property
    def draining(self) -> bool:
        return self._draining

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------- handling
    def _chaos_at(self, site: str):
        if self.chaos is None:
            return None
        return self.chaos.visit(site)

    def _serve_connection(self, conn: socket.socket, peer) -> None:
        log.debug("connection from %s", peer)
        try:
            while not self._stop.is_set():
                spec = self._chaos_at("worker.recv")
                if spec is not None and spec.kind == "drop":
                    return  # close mid-stream: the dialer sees ConnectionClosed
                try:
                    message, version = recv_frame_ex(conn)
                except ConnectionClosed:
                    return
                except WireError as exc:
                    # Version/framing mismatch: tell the peer why, then drop.
                    self._best_effort_send(conn, ("error", str(exc)))
                    return
                reply = self._dispatch(message)
                if reply is None:  # injected crash: vanish mid-stream
                    self.stop()
                    return
                if reply[0] in ("unavailable", "expired") and version < 4:
                    # Pre-v4 dialers don't know these reply types; a closed
                    # connection is the compatible signal (they requeue).
                    return
                spec = self._chaos_at("worker.send")
                if spec is not None and spec.kind == "drop":
                    return  # computed, never replied — like a mid-send death
                if spec is not None and spec.kind == "corrupt":
                    # A frame whose header decodes but whose payload does
                    # not: the dialer's _decode raises WireError -> requeue.
                    frame = bytearray(_encode(reply, version))
                    frame[-1] ^= 0xFF
                    conn.sendall(bytes(frame))
                    continue
                if spec is not None:
                    FaultPlan.apply(spec, what="worker reply")  # slow/raise
                # Reply at the request's version (wire negotiation rule).
                send_frame(conn, reply, version=version)
        except OSError:
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._conns.discard(conn)
                self._threads.discard(threading.current_thread())

    def _dispatch(self, message) -> tuple | None:
        if not isinstance(message, tuple) or not message:
            return ("error", f"malformed message: {message!r}")
        kind = message[0]
        if kind == "ping":
            return ("pong", {"shards_served": self.shards_served,
                             "shards_expired": self.shards_expired,
                             "draining": self._draining,
                             "backends": list(self.backends)})
        if kind == "shard":
            return self._dispatch_shard(message)
        return ("error", f"unknown message type {kind!r}")

    def _dispatch_shard(self, message) -> tuple | None:
        if len(message) == 4:
            _, func, task, rng = message
            meta = {}
        elif len(message) == 5:
            _, func, task, rng, meta = message
            if not isinstance(meta, dict):
                return ("error", "shard metadata must be a dict")
        else:
            return ("error",
                    "shard message must be (shard, func, task, rng[, meta])")
        if self._draining:
            return ("unavailable", "worker draining: requeue elsewhere")
        # Compatible wire growth: an absent key means the numpy backend
        # (every pre-backend dialer), so no version bump.  A backend this
        # worker does not advertise takes the same requeue path draining
        # does — the dialer retries the shard on a capable worker.
        required_backend = meta.get("backend", "numpy")
        if required_backend not in self.backends:
            return ("unavailable",
                    f"worker lacks kernel backend {required_backend!r} "
                    f"(has: {', '.join(self.backends)}): requeue elsewhere")
        deadline_s = meta.get("deadline_s")
        if deadline_s is not None and deadline_s <= 0:
            # The budget was spent in transit: refuse without computing —
            # nobody is waiting for this result.
            with self._lock:
                self.shards_expired += 1
            return ("expired",
                    f"shard arrived with its deadline spent "
                    f"({deadline_s:.3f}s remaining)")
        spec = self._chaos_at("worker.shard")
        if spec is not None and spec.kind == "crash" and not spec.compute_first:
            return None  # vanish before computing
        with self._lock:
            self._active_shards += 1
        try:
            if spec is not None and spec.kind == "slow":
                time.sleep(spec.delay_s)
            if spec is not None and spec.kind == "raise":
                raise RuntimeError(
                    "chaos: injected deterministic failure at worker shard"
                )
            # Trace ID (wire v4 meta, gateway-originated requests): scope
            # the shard with it so traced code sees the ambient ID, and
            # log it — `grep trace=<id>` across gateway and worker logs
            # reconstructs which hosts computed which shards.
            from repro.gateway.tracing import trace_scope
            from repro.observability.spans import (
                SpanRecorder, span, span_scope,
            )

            trace_id = meta.get("trace_id")
            recorder = None
            if trace_id is not None:
                trace_id = str(trace_id)
                with self._lock:
                    self.seen_trace_ids.append(trace_id)
                log.info("shard trace=%s", trace_id)
                # Traced shard: record a worker-side compute span, parented
                # on the dialer's attempt span (meta["parent_span_id"]) so
                # the stitched tree crosses the wire seam.
                recorder = SpanRecorder(trace_id)
            deadline = Deadline.after(deadline_s)
            with trace_scope(trace_id), deadline_scope(deadline), \
                    span_scope(recorder, meta.get("parent_span_id")):
                with span("worker.compute", worker=f"{self.address[0]}:"
                                                   f"{self.address[1]}"):
                    result = func(task, rng)
        except Exception as exc:  # deterministic failure -> no retry
            log.exception("shard function raised")
            return ("error",
                    f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
        finally:
            with self._lock:
                self._active_shards -= 1
        with self._lock:
            self.shards_served += 1
        if spec is not None and spec.kind == "crash":
            # Crash *after* computing but before replying — the harshest
            # mid-shard death the executor must survive.
            return None
        if recorder is not None:
            # Compatible reply growth: traced shards answer a 3-tuple whose
            # meta carries the worker-side spans; old dialers read reply[1]
            # and ignore the extra element, untraced replies stay 2-tuples.
            return ("result", result,
                    {"spans": [s.to_dict() for s in recorder.drain()]})
        return ("result", result)

    @staticmethod
    def _best_effort_send(conn: socket.socket, payload) -> None:
        # Sent when the *incoming* frame was undecodable, so the peer's
        # version is unknown: MIN_WIRE_VERSION is the one version every
        # supported peer (v2 exact-match or v3+ range) can decode.
        try:
            send_frame(conn, payload, version=MIN_WIRE_VERSION)
        except OSError:
            pass


def worker_registration_meta(
    backends: tuple[str, ...] | None = None,
) -> dict:
    """The capability payload a registration frame advertises.

    ``backends`` is what routing filters on (never send a numba shard to a
    numpy-only worker); ``calibrated`` is this host's persisted
    ``repro calibrate`` winner when one exists — the seed of the ROADMAP's
    cost-model item (the probe is *not* run here: registration must stay
    cheap, so an uncalibrated host simply omits the key).
    """
    from repro.kernels import available_kernel_backends
    from repro.kernels.backends import load_calibration

    meta: dict = {
        "backends": list(
            backends if backends is not None else available_kernel_backends()
        ),
    }
    record = load_calibration()
    if record is not None:
        meta["calibrated"] = record["fastest"]
    return meta


def register_with_server(
    server_address: str,
    advertise_address: str,
    *,
    attempts: int = 10,
    delay: float = 0.5,
    timeout: float = 5.0,
    backends: tuple[str, ...] | None = None,
) -> dict:
    """Announce *advertise_address* to a ``repro serve`` at *server_address*.

    Sends one ``("register", advertise_address, meta)`` frame — *meta* is
    :func:`worker_registration_meta`: the advertised kernel backends plus
    this host's calibration.  The meta element is compatible growth on the
    receiving side: workers predating it send 2-tuples and the server
    registers them as numpy-only.  Returns the server's registration
    payload (the current fleet snapshot).  Connection refusals are retried
    — workers routinely boot before their server — but a server that
    answers with an error (no registry configured, malformed address)
    fails immediately: retrying cannot help.

    A wildcard advertise host (``0.0.0.0`` / ``::``, the bind address of a
    multi-host worker) is not dialable, so it is replaced by the local
    address of the registration socket itself — the interface this worker
    actually reaches the server through, hence the one the server can dial
    back.

    Raises:
        ValueError: a malformed server or advertise address.
        RuntimeError: the server rejected the registration.
        OSError: the server stayed unreachable through every attempt.
    """
    host, port = parse_address(server_address)
    adv_host, adv_port = parse_address(advertise_address)
    meta = worker_registration_meta(backends)
    last_exc: OSError | None = None
    for attempt in range(attempts):
        if attempt:
            time.sleep(delay)
        try:
            with socket.create_connection((host, port), timeout=timeout) as sock:
                sock.settimeout(timeout)
                if adv_host in ("0.0.0.0", "::"):
                    adv_host = sock.getsockname()[0]
                advertise_address = format_address(adv_host, adv_port)
                send_frame(sock, ("register", advertise_address, meta))
                reply = recv_frame(sock)
        except (OSError, ConnectionClosed) as exc:
            last_exc = exc if isinstance(exc, OSError) else OSError(str(exc))
            continue
        if isinstance(reply, tuple) and reply and reply[0] == "registered":
            log.info("registered %s with %s", advertise_address, server_address)
            return reply[1]
        raise RuntimeError(f"server rejected registration: {reply!r}")
    raise OSError(
        f"could not reach {server_address} after {attempts} attempts: {last_exc}"
    )


def deregister_from_server(
    server_address: str,
    advertise_address: str,
    *,
    timeout: float = 5.0,
) -> bool:
    """Withdraw *advertise_address* from a server's registry (best-effort).

    One ``("deregister", address)`` frame; a draining worker calls this so
    the server stops routing to it immediately instead of waiting for a
    health-check eviction.  Failures are swallowed — the worker is going
    away regardless, and the health loop is the backstop.
    """
    try:
        host, port = parse_address(server_address)
        adv_host, adv_port = parse_address(advertise_address)
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            send_frame(sock, ("deregister", format_address(adv_host, adv_port)))
            reply = recv_frame(sock)
    except (OSError, WireError, ValueError) as exc:
        log.warning("deregistration with %s failed: %s", server_address, exc)
        return False
    return bool(isinstance(reply, tuple) and reply and reply[0] == "deregistered")


def start_reannounce_loop(
    server_address: str,
    advertise_address: str,
    *,
    interval: float = DEFAULT_REANNOUNCE_INTERVAL,
    stop_event: threading.Event | None = None,
    backends: tuple[str, ...] | None = None,
) -> threading.Thread:
    """Re-announce this worker to the server every *interval* seconds.

    Registration is otherwise one-shot at boot, while the server's health
    loop evicts on a missed ping — one transient blip (network hiccup, a
    long GIL-held shard, server restart) would silently and *permanently*
    drop a live worker from the fleet.  Re-registration is idempotent
    (re-adding a live address just refreshes its stamp), so this loop makes
    membership self-healing: an evicted-but-alive worker reappears within
    one interval, and a restarted server re-learns its fleet without anyone
    restarting workers.  Failures are logged and retried next tick.

    Returns the started daemon thread; set *stop_event* to end the loop.
    """
    stop = stop_event if stop_event is not None else threading.Event()

    def loop() -> None:
        while not stop.wait(interval):
            try:
                register_with_server(
                    server_address, advertise_address, attempts=1,
                    backends=backends,
                )
            except (OSError, RuntimeError, ValueError) as exc:
                log.warning("re-registration with %s failed (will retry): %s",
                            server_address, exc)

    thread = threading.Thread(target=loop, daemon=True,
                              name="repro-worker-reannounce")
    thread.start()
    return thread


def main(argv=None) -> int:
    """CLI entry point for ``repro-worker``."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Shard-execution worker for repro RemoteExecutor "
                    "(trusted networks only).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--register", default=None, metavar="SERVER:PORT",
                        help="announce this worker to a running repro serve "
                             "(enables auto-discovery; no --remote-worker "
                             "wiring needed on the server)")
    parser.add_argument("--advertise", default=None, metavar="HOST:PORT",
                        help="address the server should dial back "
                             "(default: the bound host:port)")
    parser.add_argument("--register-interval", type=float,
                        default=DEFAULT_REANNOUNCE_INTERVAL,
                        help="seconds between registration re-announcements "
                             "(heals health-check evictions and server "
                             "restarts; 0 disables)")
    parser.add_argument("--backends", default=None, metavar="NAME[,NAME...]",
                        help="kernel backends this worker serves and "
                             "advertises (default: every backend available "
                             "on this host); names must be available here")
    parser.add_argument("--chaos-plan", default=None, metavar="PLAN",
                        help="arm a seeded FaultPlan: a JSON file path or an "
                             "inline JSON object (testing only)")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        help="seconds SIGTERM waits for in-flight shards "
                             "before stopping anyway")
    parser.add_argument("--log-format", choices=LOG_FORMATS, default="plain",
                        help="shard-log format: historical plain text "
                             "(default) or one JSON object per line")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    configure_logging(
        args.log_format,
        level=logging.DEBUG if args.verbose else logging.INFO,
    )
    chaos = FaultPlan.from_json(args.chaos_plan) if args.chaos_plan else None
    if chaos is not None:
        log.warning("chaos armed: %r", chaos)
    backends = None
    if args.backends:
        from repro.kernels import available_kernel_backends

        backends = tuple(
            name.strip() for name in args.backends.split(",") if name.strip()
        )
        unavailable = [b for b in backends
                       if b not in available_kernel_backends()]
        if unavailable:
            parser.error(
                f"--backends names unavailable kernel backends "
                f"{', '.join(unavailable)} (available here: "
                f"{', '.join(available_kernel_backends())})"
            )
    server = WorkerServer(args.host, args.port, chaos=chaos,
                          backends=backends)
    # Announce readiness on stdout so harnesses can wait for the port.
    print(f"repro-worker ready on {format_address(*server.address)}",
          flush=True)
    advertise = args.advertise or format_address(*server.address)
    registered = False
    if args.register:
        keep_announcing = True
        try:
            register_with_server(args.register, advertise,
                                 backends=server.backends)
            registered = True
            print(f"repro-worker registered with {args.register} as {advertise}",
                  flush=True)
        except OSError as exc:
            # Server not up yet / transient network: keep serving (a static
            # RemoteExecutor can still reach us) and let the re-announce
            # loop establish the registration when the server appears.
            log.error("registration with %s failed: %s", args.register, exc)
            registered = True  # the loop may yet succeed; drain withdraws
        except (RuntimeError, ValueError) as exc:
            # Malformed address or a server that rejects registration:
            # deterministic — re-announcing would only repeat the error.
            log.error("registration with %s failed permanently: %s",
                      args.register, exc)
            keep_announcing = False
        if keep_announcing and args.register_interval > 0:
            start_reannounce_loop(
                args.register, advertise,
                interval=args.register_interval, stop_event=server._stop,
                backends=server.backends,
            )

    def _on_sigterm(signum, frame):
        log.info("SIGTERM: draining (finishing in-flight shards)")
        server.drain(
            deregister=(args.register, advertise)
            if args.register and registered else None,
            timeout=args.drain_timeout,
        )

    signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
