"""``repro-worker`` — a shard-execution server for :class:`RemoteExecutor`.

The worker listens on TCP, accepts any number of concurrent connections
(one thread each), and answers frames of the wire protocol
(:mod:`repro.service.wire`):

- ``("shard", func, task, rng)`` -> ``("result", func(task, rng))``, or
  ``("error", message)`` when the shard function raises;
- ``("ping",)`` -> ``("pong", stats_dict)`` — liveness/health probe.

The worker is stateless between shards: everything a shard needs (schedule,
targets, pre-spawned RNG streams) arrives in the task payload, which is what
makes results bit-identical to local execution.  Functions are pickled by
reference (module + qualname), so the worker host needs the same ``repro``
version importable — deploy workers and drivers from the same build, and
bump :data:`repro.service.wire.WIRE_VERSION` on incompatible protocol
changes.

Run one per host::

    repro-worker --host 0.0.0.0 --port 7737

(or ``python -m repro.service.worker``).  Only expose workers to trusted
networks: frames are pickles and execute code by design.
"""

from __future__ import annotations

import argparse
import logging
import socket
import threading
import traceback

from repro.service.wire import ConnectionClosed, WireError, recv_frame, send_frame

__all__ = ["WorkerServer", "main"]

DEFAULT_PORT = 7737

log = logging.getLogger("repro.service.worker")


class WorkerServer:
    """A blocking TCP worker; use :meth:`start` + :meth:`serve_forever`, or
    the context-manager form which serves on a background thread.

    Args:
        host: bind address (default loopback; use ``0.0.0.0`` for cluster use).
        port: bind port; ``0`` picks a free one (read it from :attr:`address`).
        fail_after: **fault-injection hook for tests** — after serving this
            many shards the worker abruptly closes every connection and stops
            accepting, simulating a crash mid-stream.  ``None`` (default)
            never fails.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 *, fail_after: int | None = None):
        self._sock = socket.create_server((host, port), backlog=16)
        self._sock.settimeout(0.2)  # poll so shutdown is prompt
        self.address: tuple[str, int] = self._sock.getsockname()[:2]
        self.fail_after = fail_after
        self.shards_served = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        # Live connections/threads only: handlers prune themselves on exit,
        # so a long-lived worker serving many short connections stays flat.
        self._threads: set[threading.Thread] = set()
        self._conns: set[socket.socket] = set()

    # ------------------------------------------------------------ lifecycle
    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`stop` is called."""
        log.info("repro-worker listening on %s:%d", *self.address)
        while not self._stop.is_set():
            try:
                conn, peer = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.settimeout(None)
            t = threading.Thread(
                target=self._serve_connection, args=(conn, peer), daemon=True
            )
            with self._lock:
                self._conns.add(conn)
                self._threads.add(t)
            t.start()
        self._sock.close()

    def start(self) -> "WorkerServer":
        """Serve on a daemon thread (returns immediately)."""
        self._accept_thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close every live connection, join the threads."""
        self._stop.set()
        with self._lock:
            conns, self._conns = self._conns, set()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------- handling
    def _crashed(self) -> bool:
        return self.fail_after is not None and self.shards_served >= self.fail_after

    def _serve_connection(self, conn: socket.socket, peer) -> None:
        log.debug("connection from %s", peer)
        try:
            while not self._stop.is_set():
                try:
                    message = recv_frame(conn)
                except ConnectionClosed:
                    return
                except WireError as exc:
                    # Version/framing mismatch: tell the peer why, then drop.
                    self._best_effort_send(conn, ("error", str(exc)))
                    return
                reply = self._dispatch(message)
                if reply is None:  # injected crash: vanish mid-stream
                    self.stop()
                    return
                send_frame(conn, reply)
        except OSError:
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._conns.discard(conn)
                self._threads.discard(threading.current_thread())

    def _dispatch(self, message) -> tuple | None:
        if not isinstance(message, tuple) or not message:
            return ("error", f"malformed message: {message!r}")
        kind = message[0]
        if kind == "ping":
            return ("pong", {"shards_served": self.shards_served})
        if kind == "shard":
            if self._crashed():
                return None
            try:
                _, func, task, rng = message
            except ValueError:
                return ("error", "shard message must be (shard, func, task, rng)")
            try:
                result = func(task, rng)
            except Exception as exc:  # deterministic failure -> no retry
                log.exception("shard function raised")
                return ("error",
                        f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
            with self._lock:
                self.shards_served += 1
            if self._crashed():
                # Crash *after* computing but before replying — the harshest
                # mid-shard death the executor must survive.
                return None
            return ("result", result)
        return ("error", f"unknown message type {kind!r}")

    @staticmethod
    def _best_effort_send(conn: socket.socket, payload) -> None:
        try:
            send_frame(conn, payload)
        except OSError:
            pass


def main(argv=None) -> int:
    """CLI entry point for ``repro-worker``."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Shard-execution worker for repro RemoteExecutor "
                    "(trusted networks only).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    server = WorkerServer(args.host, args.port)
    # Announce readiness on stdout so harnesses can wait for the port.
    print(f"repro-worker ready on {server.address[0]}:{server.address[1]}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
