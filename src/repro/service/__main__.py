"""``python -m repro.service`` — alias for the ``repro`` CLI."""

from repro.service.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
