"""``repro`` — the serving/distribution command line.

Subcommands::

    repro serve           # run the async SearchService behind a TCP endpoint
    repro gateway         # same stack plus the schema'd HTTP/JSON edge
    repro submit          # send one request to a running server, print the report
    repro curl            # send one request to a gateway over HTTP/JSON
    repro trace           # render a recent request's span waterfall
    repro worker          # run a shard-execution worker (alias of repro-worker)
    repro methods         # list the method registry (name, backends, description)
    repro calibrate       # probe kernel backends, persist the fastest for "auto"
    repro cluster status  # print a replica's membership/peering/fleet status

Two-host quickstart (see README "Serving & distribution"): start the
server, then start ``repro-worker --register server:port`` on each compute
host — workers announce themselves, the server health-checks them with the
wire's ``ping``, and batched searches fan their shards out over TCP with no
static wiring.  (``--remote-worker host:port`` on the server still works
for fixed fleets.)  Clients talk to the server with ``repro submit``.

Cluster quickstart (README "Cluster"): start several replicas with
``repro serve --join`` pointing at each other (or at any shared seed) —
gossip membership federates them, cache entries are served across replicas
by structural fingerprint, and a worker registered to *any* replica
executes shards for *all* of them.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

__all__ = ["main"]


def _row_threads_arg(value: str):
    """argparse type for ``--row-threads``: an int >= 1 or ``'auto'``."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be an integer or 'auto', got {value!r}"
        ) from None


def _add_serving_flags(p: argparse.ArgumentParser) -> None:
    """The serving-stack flags shared by ``repro serve`` and ``repro
    gateway`` (admission bounds, cache, fleet wiring, cluster, resilience)."""
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="bind port (default 7736; 0 picks a free port)")
    p.add_argument("--max-pending", type=int, default=64,
                   help="admission bound: queued + running requests")
    p.add_argument("--max-workers", type=int, default=4,
                   help="simultaneous engine executions")
    p.add_argument("--request-timeout", type=float, default=60.0,
                   help="default per-request deadline in seconds")
    p.add_argument("--cache-size", type=int, default=256,
                   help="TTL cache entry bound (0 disables caching)")
    p.add_argument("--cache-ttl", type=float, default=300.0,
                   help="seconds a cached report stays servable")
    p.add_argument("--remote-worker", action="append", default=[],
                   metavar="HOST:PORT",
                   help="static repro-worker endpoint; repeat for more "
                        "hosts.  Without this flag the server accepts "
                        "worker self-registration instead (workers run "
                        "with --register) and health-checks the fleet")
    p.add_argument("--fallback-local", action="store_true",
                   help="finish shards in-process if every worker dies "
                        "(static fleets; auto-registered fleets always "
                        "fall back)")
    p.add_argument("--health-interval", type=float, default=10.0,
                   help="seconds between health-check sweeps of "
                        "auto-registered workers")
    p.add_argument("--join", action="append", default=[],
                   metavar="HOST:PORT",
                   help="seed address of a sibling repro serve replica; "
                        "repeat for more seeds.  Enables cluster mode: "
                        "gossip membership, cache peering by request "
                        "fingerprint, and cluster-wide worker scheduling.  "
                        "A seed that is not up yet is retried every gossip "
                        "round, so replicas may point at each other and "
                        "boot in any order")
    p.add_argument("--cluster-advertise", default=None, metavar="HOST:PORT",
                   help="address sibling replicas should dial this one at "
                        "(default: the bound host:port; set it when binding "
                        "0.0.0.0 or behind NAT)")
    p.add_argument("--gossip-interval", type=float, default=2.0,
                   help="seconds between gossip rounds (cluster mode)")
    p.add_argument("--suspicion-timeout", type=float, default=30.0,
                   help="seconds without a heartbeat before a cluster "
                        "member is declared dead and dropped")
    p.add_argument("--peer-wait", type=float, default=2.0,
                   help="seconds a cache-peering probe may wait on a peer "
                        "that is mid-computing the same request "
                        "(cluster-wide single-flight window; 0 disables)")
    p.add_argument("--retry-attempts", type=int, default=3,
                   help="transient-failure attempts per worker lane before "
                        "it is retired (exponential backoff with "
                        "decorrelated jitter between attempts)")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive endpoint failures before its circuit "
                        "breaker opens (quarantining it from dispatch, "
                        "peering, and gossip)")
    p.add_argument("--breaker-reset", type=float, default=15.0,
                   help="seconds an open breaker waits before letting one "
                        "half-open trial request through")
    p.add_argument("--log-format", default="plain",
                   choices=["plain", "json"],
                   help="log line format: human-readable 'plain' (default) "
                        "or one JSON object per line for log shippers")
    p.add_argument("--flight-recorder", default=None, metavar="PATH",
                   help="crash flight recorder: dump the last recorded "
                        "traces plus service stats to PATH as JSON on an "
                        "unhandled crash or on SIGUSR1")


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("serve", help="run the async search service over TCP")
    _add_serving_flags(p)


def _add_gateway(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "gateway",
        help="run the search service with the schema'd HTTP/JSON edge "
             "(plus the TCP endpoint, so workers and gossip still connect)",
    )
    _add_serving_flags(p)
    p.add_argument("--http-host", default="127.0.0.1",
                   help="HTTP bind address (0.0.0.0 to expose beyond "
                        "loopback — put TLS termination in front)")
    p.add_argument("--http-port", type=int, default=None,
                   help="HTTP bind port (default 7780; 0 picks a free port)")
    p.add_argument("--tenants", default=None, metavar="FILE",
                   help="tenants file (TOML on Python >= 3.11, or JSON): "
                        "API keys, rate limits, in-flight caps, priorities. "
                        "Without it the gateway is open (one shared "
                        "anonymous tenant)")
    p.add_argument("--slow-threshold", type=float, default=None,
                   metavar="SECONDS",
                   help="log any request slower than this with its full "
                        "span tree on one structured line")
    p.add_argument("--no-tracing", action="store_true",
                   help="disable per-request span tracing (drops "
                        "/v1/trace/{id}, stage histograms, and the slow-"
                        "request log; tracing overhead is benchmarked at "
                        "<5%% on the cached path)")


def _add_request_flags(p: argparse.ArgumentParser) -> None:
    """The request-shape flags shared by ``repro submit`` and ``repro curl``."""
    p.add_argument("--n-items", type=int, required=True, help="database size N")
    p.add_argument("--n-blocks", type=int, required=True, help="block count K")
    p.add_argument("--method", default="grk")
    p.add_argument("--backend", default=None)
    p.add_argument("--epsilon", type=float, default=None)
    p.add_argument("--target", type=int, default=None,
                   help="marked address (single search)")
    p.add_argument("--batch", action="store_true",
                   help="batched search over --targets (or every address)")
    p.add_argument("--targets", type=int, nargs="*", default=None,
                   help="explicit batch targets (with --batch)")
    p.add_argument("--seed", type=int, default=None,
                   help="seed for stochastic methods")
    p.add_argument("--dtype", default=None, choices=["complex128", "complex64"],
                   help="amplitude precision (complex64 halves shard memory "
                        "at the documented tolerance)")
    p.add_argument("--row-threads", type=_row_threads_arg, default=None,
                   help="threads across independent batch rows: an integer "
                        "or 'auto' for a cpu-count-aware default (results "
                        "are bit-identical for any value)")
    p.add_argument("--kernel-backend", default=None,
                   help="kernel backend for the batched sweeps: numpy "
                        "(default), fused, numba, cupy, or 'auto' to pick "
                        "the calibrated fastest (complex128 results are "
                        "bit-identical across backends; see repro methods "
                        "for what this host can run)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-request deadline override in seconds")
    p.add_argument("--wants", default=None,
                   choices=["probability", "report", "amplitudes", "samples"],
                   help="what the caller needs back (default: report). "
                        "'probability' asks only for success probability + "
                        "query count, which lets the planner answer from "
                        "the closed-form analytic tier at any N")
    p.add_argument("--engine", default=None,
                   choices=["auto", "analytic", "simulate"],
                   help="engine tier override (default: auto routing). "
                        "'analytic' forces the closed-form tier (errors if "
                        "no model covers the method); 'simulate' forces "
                        "the statevector tier")


def _add_submit(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("submit", help="submit one request to a running server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None)
    _add_request_flags(p)
    p.add_argument("--stats", action="store_true",
                   help="also fetch and print server stats")
    p.add_argument("--json", action="store_true",
                   help="emit the gateway schema's versioned report envelope "
                        "(machine-readable; identical to POST /v1/search)")
    p.add_argument("--trace-id", default=None,
                   help="trace this request under an explicit ID (default: "
                        "mint one).  The effective ID is printed to stderr; "
                        "feed it to `repro trace` for the span waterfall")


def _add_curl(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "curl",
        help="submit one request to a repro gateway over HTTP/JSON "
             "(the same envelope curl would send)",
    )
    p.add_argument("--url", default=None,
                   help="gateway base URL (default http://HOST:PORT from "
                        "--host/--http-port)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--http-port", type=int, default=None)
    p.add_argument("--api-key", default=None,
                   help="tenant API key (sent as X-API-Key)")
    p.add_argument("--trace-id", default=None,
                   help="explicit request trace ID (sent as X-Request-ID; "
                        "default: the gateway mints one)")
    _add_request_flags(p)


def _add_trace(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "trace",
        help="fetch a recent request's span tree and render the waterfall "
             "(per-stage latency attribution)",
    )
    p.add_argument("trace_id", help="the request's trace ID (printed by "
                                    "repro submit / repro curl, or the "
                                    "X-Request-ID response header)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="TCP wire port of a repro serve (default 7736)")
    p.add_argument("--url", default=None,
                   help="fetch over HTTP from a gateway instead "
                        "(GET URL/v1/trace/{id})")
    p.add_argument("--json", action="store_true",
                   help="emit the raw span dicts as JSON instead of the "
                        "rendered waterfall")


def _add_worker(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("worker", help="run a shard-execution worker")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None)
    p.add_argument("--register", default=None, metavar="SERVER:PORT",
                   help="announce this worker to a running repro serve")
    p.add_argument("--advertise", default=None, metavar="HOST:PORT",
                   help="address the server should dial back")
    p.add_argument("--register-interval", type=float, default=None,
                   help="seconds between registration re-announcements")
    p.add_argument("--backends", default=None, metavar="NAME[,NAME...]",
                   help="kernel backends this worker serves and advertises "
                        "(default: every backend available on this host)")
    p.add_argument("--chaos-plan", default=None, metavar="PLAN",
                   help="deterministic fault-injection plan (JSON text or a "
                        "path to a JSON file) applied at this worker's "
                        "chaos sites — see repro.resilience.chaos")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds SIGTERM waits for in-flight shards before "
                        "the worker stops")
    p.add_argument("--log-format", default="plain",
                   choices=["plain", "json"],
                   help="shard log format: 'plain' (default) or JSON lines")
    p.add_argument("-v", "--verbose", action="store_true")


def _add_methods(sub: argparse._SubParsersAction) -> None:
    sub.add_parser("methods",
                   help="list the registered search methods and the kernel "
                        "backends this host can run")


def _add_calibrate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "calibrate",
        help="time every available kernel backend on a probe workload and "
             "persist the fastest — what backend='auto' resolves to on "
             "this host (workers also advertise it at registration)",
    )
    p.add_argument("--no-persist", action="store_true",
                   help="print the timings without writing the calibration "
                        "file")
    p.add_argument("--json", action="store_true",
                   help="emit the calibration record as JSON")


def _add_cluster(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("cluster", help="inspect a clustered repro serve")
    csub = p.add_subparsers(dest="cluster_command", required=True)
    status = csub.add_parser(
        "status",
        help="print a replica's membership table, cluster-wide worker "
             "fleet, and cache-peering counters as JSON",
    )
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, default=None)
    status.add_argument("--json", action="store_true",
                        help="emit the versioned, JSON-safe schema envelope "
                             "instead of the raw status dump")


def _build_serving_stack(args, prog: str):
    """The breaker/retry/registry/cluster/peering/executor stack shared by
    ``repro serve`` and ``repro gateway``.

    Returns ``(exit_code, None)`` on a usage error (already printed), else
    ``(None, stack)`` where *stack* has ``engine`` / ``registry`` /
    ``cluster`` / ``peering``.
    """
    from repro.engine import SearchEngine
    from repro.resilience import BreakerRegistry, RetryPolicy
    from repro.service.address import parse_address

    registry = None
    cluster = None
    peering = None
    if args.join and args.remote_worker:
        print(f"{prog}: --join (cluster mode) and --remote-worker "
              "(static fleet) are mutually exclusive", file=sys.stderr)
        return 2, None
    # Validate every dialable address up front: a typo'd --join or
    # --remote-worker should fail at boot with a pointed error, not as an
    # endpoint that fails every dial forever.
    for flag, values in (("--join", args.join),
                         ("--remote-worker", args.remote_worker),
                         ("--cluster-advertise",
                          [args.cluster_advertise] if args.cluster_advertise
                          else [])):
        for value in values:
            try:
                parse_address(value)
            except ValueError as exc:
                print(f"{prog}: {flag} {exc}", file=sys.stderr)
                return 2, None
    # One breaker registry and retry policy shared by every outbound path
    # (shard dispatch, cache peering, gossip) — evidence gathered on one
    # path protects the others.
    breakers = BreakerRegistry(failure_threshold=args.breaker_threshold,
                               reset_timeout=args.breaker_reset)
    retry = RetryPolicy(max_attempts=args.retry_attempts)
    if args.join:
        # Cluster mode: gossip membership + cache peering + cluster-wide
        # scheduling over every member's registered workers.
        from repro.cluster import (
            CachePeers,
            ClusterCoordinator,
            ClusterExecutor,
            ClusterMembership,
        )
        from repro.service.registry import WorkerRegistry

        registry = WorkerRegistry(breakers=breakers)
        membership = ClusterMembership(
            args.cluster_advertise, seeds=args.join,
            suspicion_timeout=args.suspicion_timeout,
        )
        cluster = ClusterCoordinator(
            membership, gossip_interval=args.gossip_interval,
            breakers=breakers,
        )
        # CachePeers derives its total budget from the wait, so a long
        # --peer-wait is honoured rather than truncated.
        peering = CachePeers(membership, inflight_wait=args.peer_wait,
                             breakers=breakers)
        executor = ClusterExecutor(membership, registry, retry=retry,
                                   breakers=breakers)
    elif args.remote_worker:
        from repro.service.executor import RemoteExecutor

        executor = RemoteExecutor(
            args.remote_worker, fallback_local=args.fallback_local,
            retry=retry, breakers=breakers,
        )
    else:
        # Auto-discovery: workers announce themselves with --register and
        # the server health-checks them; no static wiring needed.
        from repro.service.executor import RegistryExecutor
        from repro.service.registry import WorkerRegistry

        registry = WorkerRegistry(breakers=breakers)
        executor = RegistryExecutor(registry, retry=retry, breakers=breakers)
    return None, {
        "engine": SearchEngine(executor=executor),
        "registry": registry,
        "cluster": cluster,
        "peering": peering,
    }


def _install_flight_recorder(args, service):
    """Arm the crash flight recorder when ``--flight-recorder`` was given.

    Returns the installed recorder (so callers could ``uninstall``), or
    ``None``.  Dumps the service's recent traces plus a stats snapshot on
    unhandled crash and on SIGUSR1.
    """
    if not args.flight_recorder:
        return None
    from repro.observability import FlightRecorder

    recorder = FlightRecorder(
        service.trace_collector,
        path=args.flight_recorder,
        stats_fn=service.stats_snapshot,
    )
    recorder.install()
    return recorder


def _cmd_serve(args) -> int:
    from repro.service.scheduler import SearchService
    from repro.service.server import DEFAULT_PORT, SearchServer
    from repro.util.structlog import configure_logging

    configure_logging(args.log_format)
    code, stack = _build_serving_stack(args, "repro serve")
    if code is not None:
        return code

    async def run() -> None:
        async with SearchService(
            stack["engine"],
            max_pending=args.max_pending,
            max_workers=args.max_workers,
            request_timeout=args.request_timeout,
            cache_size=args.cache_size,
            cache_ttl=args.cache_ttl,
            peering=stack["peering"],
        ) as service:
            _install_flight_recorder(args, service)
            server = SearchServer(
                service,
                args.host,
                DEFAULT_PORT if args.port is None else args.port,
                registry=stack["registry"],
                health_interval=args.health_interval,
                cluster=stack["cluster"],
            )
            await server.start()
            print(f"repro serve ready on {server.address[0]}:"
                  f"{server.address[1]}", flush=True)
            await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_gateway(args) -> int:
    from repro.gateway.http import DEFAULT_HTTP_PORT, GatewayServer
    from repro.gateway.tenancy import TenantTable
    from repro.service.scheduler import SearchService
    from repro.service.server import DEFAULT_PORT, SearchServer
    from repro.util.structlog import configure_logging

    configure_logging(args.log_format)
    code, stack = _build_serving_stack(args, "repro gateway")
    if code is not None:
        return code
    if args.tenants is not None:
        try:
            tenants = TenantTable.from_file(args.tenants)
        except (OSError, ValueError, RuntimeError) as exc:
            print(f"repro gateway: --tenants {args.tenants}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        tenants = TenantTable()

    async def run() -> None:
        async with SearchService(
            stack["engine"],
            max_pending=args.max_pending,
            max_workers=args.max_workers,
            request_timeout=args.request_timeout,
            cache_size=args.cache_size,
            cache_ttl=args.cache_ttl,
            peering=stack["peering"],
        ) as service:
            _install_flight_recorder(args, service)
            # The TCP endpoint stays up alongside HTTP: workers register,
            # gossip flows, and `repro submit` keeps working — the gateway
            # adds the edge, it does not replace the fleet plumbing.
            server = SearchServer(
                service,
                args.host,
                DEFAULT_PORT if args.port is None else args.port,
                registry=stack["registry"],
                health_interval=args.health_interval,
                cluster=stack["cluster"],
            )
            await server.start()
            gateway = GatewayServer(
                service,
                args.http_host,
                DEFAULT_HTTP_PORT if args.http_port is None else args.http_port,
                tenants=tenants,
                registry=stack["registry"],
                cluster=stack["cluster"],
                tracing=not args.no_tracing,
                slow_threshold=args.slow_threshold,
            )
            await gateway.start()
            print(f"repro gateway ready on "
                  f"http://{gateway.address[0]}:{gateway.address[1]}/ "
                  f"(wire on {server.address[0]}:{server.address[1]})",
                  flush=True)
            await asyncio.gather(server.serve_forever(),
                                 gateway.serve_forever())

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _report_to_json(report) -> dict:
    import numpy as np

    from repro.engine.report import BatchReport

    if isinstance(report, BatchReport):
        return {
            "kind": "batch",
            "method": report.method,
            "backend": report.backend,
            "n_items": report.n_items,
            "n_blocks": report.n_blocks,
            "n_rows": report.n_rows,
            "worst_success": report.worst_success,
            "all_correct": report.all_correct,
            "queries_per_run": report.queries_per_run,
            "block_guesses": np.asarray(report.block_guesses).tolist(),
            "execution": dict(report.execution),
        }
    return {
        "kind": "search",
        "method": report.method,
        "backend": report.backend,
        "n_items": report.n_items,
        "n_blocks": report.n_blocks,
        "block_guess": report.block_guess,
        "success_probability": report.success_probability,
        "queries": report.queries,
        "schedule": dict(report.schedule),
    }


def _cmd_submit(args) -> int:
    from repro.engine import ExecutionPolicy, SearchRequest
    from repro.gateway.tracing import new_trace_id, sanitize_trace_id
    from repro.service.server import DEFAULT_PORT, server_stats, submit_remote

    policy = ExecutionPolicy(
        dtype=args.dtype or "complex128",
        row_threads=1 if args.row_threads is None else args.row_threads,
        backend=args.kernel_backend or "numpy",
    )
    request = SearchRequest(
        n_items=args.n_items,
        n_blocks=args.n_blocks,
        method=args.method,
        backend=args.backend,
        epsilon=args.epsilon,
        target=args.target,
        rng=args.seed,
        policy=policy,
        wants=args.wants or "report",
        engine=args.engine or "auto",
    )
    address = (args.host, DEFAULT_PORT if args.port is None else args.port)
    # Every submit is traced: mint an ID unless the caller pinned one, and
    # print the effective ID so `repro trace <id>` finds the waterfall.
    trace_id = (new_trace_id() if args.trace_id is None
                else sanitize_trace_id(args.trace_id))
    report = submit_remote(
        address,
        request,
        targets=args.targets,
        batch=args.batch,
        timeout=args.timeout,
        trace_id=trace_id,
    )
    print(f"trace: {trace_id}", file=sys.stderr)
    if args.json:
        # The gateway schema's envelope: byte-comparable with what
        # POST /v1/search returns for the same request.
        from repro.gateway.schema import encode_report

        payload = encode_report(report)
    else:
        payload = _report_to_json(report)
    if args.stats:
        payload["server_stats"] = server_stats(address)
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 0


def _cmd_curl(args) -> int:
    import urllib.error
    import urllib.request

    from repro.gateway.http import DEFAULT_HTTP_PORT
    from repro.gateway.schema import SCHEMA_VERSION
    from repro.gateway.tenancy import API_KEY_HEADER
    from repro.gateway.tracing import TRACE_HEADER

    base = args.url
    if base is None:
        port = DEFAULT_HTTP_PORT if args.http_port is None else args.http_port
        base = f"http://{args.host}:{port}"
    path = "/v1/batch" if args.batch else "/v1/search"
    payload = {
        "schema_version": SCHEMA_VERSION,
        "n_items": args.n_items,
        "n_blocks": args.n_blocks,
        "method": args.method,
    }
    if args.backend is not None:
        payload["backend"] = args.backend
    if args.epsilon is not None:
        payload["epsilon"] = args.epsilon
    if args.target is not None:
        payload["target"] = args.target
    if args.batch:
        payload["batch"] = True
        if args.targets is not None:
            payload["targets"] = args.targets
    if args.seed is not None:
        payload["seed"] = args.seed
    if args.dtype is not None:
        payload["dtype"] = args.dtype
    if args.row_threads is not None:
        payload["row_threads"] = args.row_threads
    if args.kernel_backend is not None:
        payload["kernel_backend"] = args.kernel_backend
    if args.timeout is not None:
        payload["timeout"] = args.timeout
    if args.wants is not None:
        payload["wants"] = args.wants
    if args.engine is not None:
        payload["engine"] = args.engine
    request = urllib.request.Request(
        base.rstrip("/") + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    if args.api_key is not None:
        request.add_header(API_KEY_HEADER, args.api_key)
    if args.trace_id is not None:
        request.add_header(TRACE_HEADER, args.trace_id)
    try:
        with urllib.request.urlopen(request) as response:
            body = response.read()
            trace = response.headers.get(TRACE_HEADER)
    except urllib.error.HTTPError as exc:
        # The gateway's structured error envelope is the useful output.
        sys.stdout.write(exc.read().decode("utf-8", "replace"))
        print()
        print(f"repro curl: HTTP {exc.code} from {base}{path}",
              file=sys.stderr)
        return 1
    except urllib.error.URLError as exc:
        print(f"repro curl: cannot reach {base}{path}: {exc.reason}",
              file=sys.stderr)
        return 1
    sys.stdout.write(body.decode("utf-8"))
    print()
    if trace:
        print(f"trace: {trace}", file=sys.stderr)
    return 0


def _cmd_trace(args) -> int:
    from repro.observability import Span, render_waterfall

    if args.url is not None:
        import urllib.error
        import urllib.request

        url = args.url.rstrip("/") + f"/v1/trace/{args.trace_id}"
        try:
            with urllib.request.urlopen(url) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace").strip()
            print(f"repro trace: HTTP {exc.code} from {url}: {detail}",
                  file=sys.stderr)
            return 1
        except urllib.error.URLError as exc:
            print(f"repro trace: cannot reach {url}: {exc.reason}",
                  file=sys.stderr)
            return 1
    else:
        from repro.service.server import DEFAULT_PORT, fetch_trace

        address = (args.host, DEFAULT_PORT if args.port is None else args.port)
        try:
            payload = fetch_trace(address, args.trace_id)
        except (OSError, RuntimeError) as exc:
            print(f"repro trace: {exc}", file=sys.stderr)
            return 1
    span_dicts = payload.get("spans") or []
    if args.json:
        json.dump({"trace_id": payload.get("trace_id", args.trace_id),
                   "spans": span_dicts}, sys.stdout, indent=2, default=str)
        print()
        return 0
    if not span_dicts:
        print(f"repro trace: no spans recorded for {args.trace_id} "
              "(evicted, untraced, or never seen)", file=sys.stderr)
        return 1
    spans = [Span.from_dict(d) for d in span_dicts if isinstance(d, dict)]
    print(render_waterfall(spans))
    return 0


def _cmd_worker(args) -> int:
    from repro.service.worker import DEFAULT_PORT, main as worker_main

    argv = ["--host", args.host,
            "--port", str(DEFAULT_PORT if args.port is None else args.port)]
    if args.register:
        argv += ["--register", args.register]
    if args.advertise:
        argv += ["--advertise", args.advertise]
    if args.register_interval is not None:
        argv += ["--register-interval", str(args.register_interval)]
    if args.backends:
        argv += ["--backends", args.backends]
    if args.chaos_plan:
        argv += ["--chaos-plan", args.chaos_plan]
    argv += ["--drain-timeout", str(args.drain_timeout)]
    argv += ["--log-format", args.log_format]
    if args.verbose:
        argv.append("--verbose")
    return worker_main(argv)


def _cmd_methods(_args) -> int:
    from repro.analytic import get_model, has_model
    from repro.engine.registry import available_methods, get_method
    from repro.kernels import describe_kernel_backends

    for name in available_methods():
        spec = get_method(name)
        if has_model(name):
            model = get_model(name)
            analytic = f"analytic:{model.regime}"
        else:
            analytic = "analytic:-"
        print(f"{name:18s} [{', '.join(spec.backends)}]  "
              f"{analytic:18s} {spec.description}")
    print()
    print("kernel backends (request with --kernel-backend / "
          "\"kernel_backend\"):")
    for info in describe_kernel_backends():
        status = ("available" if info["available"]
                  else f"unavailable: {info['why_unavailable']}")
        print(f"  {info['name']:8s} [{status}]  {info['description']}")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.kernels.backends import calibration_path, run_calibration

    record = run_calibration(persist=not args.no_persist)
    if args.json:
        json.dump(record, sys.stdout, indent=2)
        print()
        return 0
    for name, ms in sorted(record["timings_ms"].items(), key=lambda kv: kv[1]):
        marker = " <- fastest" if name == record["fastest"] else ""
        print(f"{name:8s} {ms:8.3f} ms{marker}")
    if args.no_persist:
        print("(not persisted: --no-persist)")
    else:
        print(f"persisted to {calibration_path()} — backend='auto' now "
              f"resolves to {record['fastest']!r} on this host")
    return 0


def _cmd_cluster(args) -> int:
    from repro.service.server import DEFAULT_PORT, cluster_status

    address = (args.host, DEFAULT_PORT if args.port is None else args.port)
    status = cluster_status(address)
    if args.json:
        from repro.gateway.schema import SCHEMA_VERSION
        from repro.util.jsonsafe import json_safe

        status = {"schema_version": SCHEMA_VERSION, "kind": "cluster-status",
                  "cluster": json_safe(status)}
    json.dump(status, sys.stdout, indent=2)
    print()
    return 0


_COMMANDS = {
    "serve": _cmd_serve,
    "gateway": _cmd_gateway,
    "submit": _cmd_submit,
    "curl": _cmd_curl,
    "trace": _cmd_trace,
    "worker": _cmd_worker,
    "methods": _cmd_methods,
    "calibrate": _cmd_calibrate,
    "cluster": _cmd_cluster,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Serving and distribution CLI for the partial-search engine.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_serve(sub)
    _add_gateway(sub)
    _add_submit(sub)
    _add_curl(sub)
    _add_trace(sub)
    _add_worker(sub)
    _add_methods(sub)
    _add_calibrate(sub)
    _add_cluster(sub)
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
