"""``repro`` — the serving/distribution command line.

Subcommands::

    repro serve           # run the async SearchService behind a TCP endpoint
    repro submit          # send one request to a running server, print the report
    repro worker          # run a shard-execution worker (alias of repro-worker)
    repro methods         # list the method registry (name, backends, description)
    repro cluster status  # print a replica's membership/peering/fleet status

Two-host quickstart (see README "Serving & distribution"): start the
server, then start ``repro-worker --register server:port`` on each compute
host — workers announce themselves, the server health-checks them with the
wire's ``ping``, and batched searches fan their shards out over TCP with no
static wiring.  (``--remote-worker host:port`` on the server still works
for fixed fleets.)  Clients talk to the server with ``repro submit``.

Cluster quickstart (README "Cluster"): start several replicas with
``repro serve --join`` pointing at each other (or at any shared seed) —
gossip membership federates them, cache entries are served across replicas
by structural fingerprint, and a worker registered to *any* replica
executes shards for *all* of them.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

__all__ = ["main"]


def _row_threads_arg(value: str):
    """argparse type for ``--row-threads``: an int >= 1 or ``'auto'``."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be an integer or 'auto', got {value!r}"
        ) from None


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("serve", help="run the async search service over TCP")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="bind port (default 7736; 0 picks a free port)")
    p.add_argument("--max-pending", type=int, default=64,
                   help="admission bound: queued + running requests")
    p.add_argument("--max-workers", type=int, default=4,
                   help="simultaneous engine executions")
    p.add_argument("--request-timeout", type=float, default=60.0,
                   help="default per-request deadline in seconds")
    p.add_argument("--cache-size", type=int, default=256,
                   help="TTL cache entry bound (0 disables caching)")
    p.add_argument("--cache-ttl", type=float, default=300.0,
                   help="seconds a cached report stays servable")
    p.add_argument("--remote-worker", action="append", default=[],
                   metavar="HOST:PORT",
                   help="static repro-worker endpoint; repeat for more "
                        "hosts.  Without this flag the server accepts "
                        "worker self-registration instead (workers run "
                        "with --register) and health-checks the fleet")
    p.add_argument("--fallback-local", action="store_true",
                   help="finish shards in-process if every worker dies "
                        "(static fleets; auto-registered fleets always "
                        "fall back)")
    p.add_argument("--health-interval", type=float, default=10.0,
                   help="seconds between health-check sweeps of "
                        "auto-registered workers")
    p.add_argument("--join", action="append", default=[],
                   metavar="HOST:PORT",
                   help="seed address of a sibling repro serve replica; "
                        "repeat for more seeds.  Enables cluster mode: "
                        "gossip membership, cache peering by request "
                        "fingerprint, and cluster-wide worker scheduling.  "
                        "A seed that is not up yet is retried every gossip "
                        "round, so replicas may point at each other and "
                        "boot in any order")
    p.add_argument("--cluster-advertise", default=None, metavar="HOST:PORT",
                   help="address sibling replicas should dial this one at "
                        "(default: the bound host:port; set it when binding "
                        "0.0.0.0 or behind NAT)")
    p.add_argument("--gossip-interval", type=float, default=2.0,
                   help="seconds between gossip rounds (cluster mode)")
    p.add_argument("--suspicion-timeout", type=float, default=30.0,
                   help="seconds without a heartbeat before a cluster "
                        "member is declared dead and dropped")
    p.add_argument("--peer-wait", type=float, default=2.0,
                   help="seconds a cache-peering probe may wait on a peer "
                        "that is mid-computing the same request "
                        "(cluster-wide single-flight window; 0 disables)")
    p.add_argument("--retry-attempts", type=int, default=3,
                   help="transient-failure attempts per worker lane before "
                        "it is retired (exponential backoff with "
                        "decorrelated jitter between attempts)")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive endpoint failures before its circuit "
                        "breaker opens (quarantining it from dispatch, "
                        "peering, and gossip)")
    p.add_argument("--breaker-reset", type=float, default=15.0,
                   help="seconds an open breaker waits before letting one "
                        "half-open trial request through")


def _add_submit(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("submit", help="submit one request to a running server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None)
    p.add_argument("--n-items", type=int, required=True, help="database size N")
    p.add_argument("--n-blocks", type=int, required=True, help="block count K")
    p.add_argument("--method", default="grk")
    p.add_argument("--backend", default=None)
    p.add_argument("--epsilon", type=float, default=None)
    p.add_argument("--target", type=int, default=None,
                   help="marked address (single search)")
    p.add_argument("--batch", action="store_true",
                   help="batched search over --targets (or every address)")
    p.add_argument("--targets", type=int, nargs="*", default=None,
                   help="explicit batch targets (with --batch)")
    p.add_argument("--seed", type=int, default=None,
                   help="seed for stochastic methods")
    p.add_argument("--dtype", default=None, choices=["complex128", "complex64"],
                   help="amplitude precision (complex64 halves shard memory "
                        "at the documented tolerance)")
    p.add_argument("--row-threads", type=_row_threads_arg, default=None,
                   help="threads across independent batch rows: an integer "
                        "or 'auto' for a cpu-count-aware default (results "
                        "are bit-identical for any value)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-request deadline override in seconds")
    p.add_argument("--stats", action="store_true",
                   help="also fetch and print server stats")


def _add_worker(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("worker", help="run a shard-execution worker")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None)
    p.add_argument("--register", default=None, metavar="SERVER:PORT",
                   help="announce this worker to a running repro serve")
    p.add_argument("--advertise", default=None, metavar="HOST:PORT",
                   help="address the server should dial back")
    p.add_argument("--register-interval", type=float, default=None,
                   help="seconds between registration re-announcements")
    p.add_argument("--chaos-plan", default=None, metavar="PLAN",
                   help="deterministic fault-injection plan (JSON text or a "
                        "path to a JSON file) applied at this worker's "
                        "chaos sites — see repro.resilience.chaos")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds SIGTERM waits for in-flight shards before "
                        "the worker stops")
    p.add_argument("-v", "--verbose", action="store_true")


def _add_methods(sub: argparse._SubParsersAction) -> None:
    sub.add_parser("methods", help="list the registered search methods")


def _add_cluster(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("cluster", help="inspect a clustered repro serve")
    csub = p.add_subparsers(dest="cluster_command", required=True)
    status = csub.add_parser(
        "status",
        help="print a replica's membership table, cluster-wide worker "
             "fleet, and cache-peering counters as JSON",
    )
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, default=None)


def _cmd_serve(args) -> int:
    import logging

    from repro.engine import SearchEngine
    from repro.resilience import BreakerRegistry, RetryPolicy
    from repro.service.address import parse_address
    from repro.service.scheduler import SearchService
    from repro.service.server import DEFAULT_PORT, SearchServer

    logging.basicConfig(level=logging.INFO,
                        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    registry = None
    cluster = None
    peering = None
    if args.join and args.remote_worker:
        print("repro serve: --join (cluster mode) and --remote-worker "
              "(static fleet) are mutually exclusive", file=sys.stderr)
        return 2
    # Validate every dialable address up front: a typo'd --join or
    # --remote-worker should fail at boot with a pointed error, not as an
    # endpoint that fails every dial forever.
    for flag, values in (("--join", args.join),
                         ("--remote-worker", args.remote_worker),
                         ("--cluster-advertise",
                          [args.cluster_advertise] if args.cluster_advertise
                          else [])):
        for value in values:
            try:
                parse_address(value)
            except ValueError as exc:
                print(f"repro serve: {flag} {exc}", file=sys.stderr)
                return 2
    # One breaker registry and retry policy shared by every outbound path
    # (shard dispatch, cache peering, gossip) — evidence gathered on one
    # path protects the others.
    breakers = BreakerRegistry(failure_threshold=args.breaker_threshold,
                               reset_timeout=args.breaker_reset)
    retry = RetryPolicy(max_attempts=args.retry_attempts)
    if args.join:
        # Cluster mode: gossip membership + cache peering + cluster-wide
        # scheduling over every member's registered workers.
        from repro.cluster import (
            CachePeers,
            ClusterCoordinator,
            ClusterExecutor,
            ClusterMembership,
        )
        from repro.service.registry import WorkerRegistry

        registry = WorkerRegistry(breakers=breakers)
        membership = ClusterMembership(
            args.cluster_advertise, seeds=args.join,
            suspicion_timeout=args.suspicion_timeout,
        )
        cluster = ClusterCoordinator(
            membership, gossip_interval=args.gossip_interval,
            breakers=breakers,
        )
        # CachePeers derives its total budget from the wait, so a long
        # --peer-wait is honoured rather than truncated.
        peering = CachePeers(membership, inflight_wait=args.peer_wait,
                             breakers=breakers)
        executor = ClusterExecutor(membership, registry, retry=retry,
                                   breakers=breakers)
    elif args.remote_worker:
        from repro.service.executor import RemoteExecutor

        executor = RemoteExecutor(
            args.remote_worker, fallback_local=args.fallback_local,
            retry=retry, breakers=breakers,
        )
    else:
        # Auto-discovery: workers announce themselves with --register and
        # the server health-checks them; no static wiring needed.
        from repro.service.executor import RegistryExecutor
        from repro.service.registry import WorkerRegistry

        registry = WorkerRegistry(breakers=breakers)
        executor = RegistryExecutor(registry, retry=retry, breakers=breakers)
    engine = SearchEngine(executor=executor)

    async def run() -> None:
        async with SearchService(
            engine,
            max_pending=args.max_pending,
            max_workers=args.max_workers,
            request_timeout=args.request_timeout,
            cache_size=args.cache_size,
            cache_ttl=args.cache_ttl,
            peering=peering,
        ) as service:
            server = SearchServer(
                service,
                args.host,
                DEFAULT_PORT if args.port is None else args.port,
                registry=registry,
                health_interval=args.health_interval,
                cluster=cluster,
            )
            await server.start()
            print(f"repro serve ready on {server.address[0]}:"
                  f"{server.address[1]}", flush=True)
            await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _report_to_json(report) -> dict:
    import numpy as np

    from repro.engine.report import BatchReport

    if isinstance(report, BatchReport):
        return {
            "kind": "batch",
            "method": report.method,
            "backend": report.backend,
            "n_items": report.n_items,
            "n_blocks": report.n_blocks,
            "n_rows": report.n_rows,
            "worst_success": report.worst_success,
            "all_correct": report.all_correct,
            "queries_per_run": report.queries_per_run,
            "block_guesses": np.asarray(report.block_guesses).tolist(),
            "execution": dict(report.execution),
        }
    return {
        "kind": "search",
        "method": report.method,
        "backend": report.backend,
        "n_items": report.n_items,
        "n_blocks": report.n_blocks,
        "block_guess": report.block_guess,
        "success_probability": report.success_probability,
        "queries": report.queries,
        "schedule": dict(report.schedule),
    }


def _cmd_submit(args) -> int:
    from repro.engine import ExecutionPolicy, SearchRequest
    from repro.service.server import DEFAULT_PORT, server_stats, submit_remote

    policy = ExecutionPolicy(
        dtype=args.dtype or "complex128",
        row_threads=1 if args.row_threads is None else args.row_threads,
    )
    request = SearchRequest(
        n_items=args.n_items,
        n_blocks=args.n_blocks,
        method=args.method,
        backend=args.backend,
        epsilon=args.epsilon,
        target=args.target,
        rng=args.seed,
        policy=policy,
    )
    address = (args.host, DEFAULT_PORT if args.port is None else args.port)
    report = submit_remote(
        address,
        request,
        targets=args.targets,
        batch=args.batch,
        timeout=args.timeout,
    )
    payload = _report_to_json(report)
    if args.stats:
        payload["server_stats"] = server_stats(address)
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 0


def _cmd_worker(args) -> int:
    from repro.service.worker import DEFAULT_PORT, main as worker_main

    argv = ["--host", args.host,
            "--port", str(DEFAULT_PORT if args.port is None else args.port)]
    if args.register:
        argv += ["--register", args.register]
    if args.advertise:
        argv += ["--advertise", args.advertise]
    if args.register_interval is not None:
        argv += ["--register-interval", str(args.register_interval)]
    if args.chaos_plan:
        argv += ["--chaos-plan", args.chaos_plan]
    argv += ["--drain-timeout", str(args.drain_timeout)]
    if args.verbose:
        argv.append("--verbose")
    return worker_main(argv)


def _cmd_methods(_args) -> int:
    from repro.engine.registry import available_methods, get_method

    for name in available_methods():
        spec = get_method(name)
        print(f"{name:18s} [{', '.join(spec.backends)}]  {spec.description}")
    return 0


def _cmd_cluster(args) -> int:
    from repro.service.server import DEFAULT_PORT, cluster_status

    address = (args.host, DEFAULT_PORT if args.port is None else args.port)
    json.dump(cluster_status(address), sys.stdout, indent=2)
    print()
    return 0


_COMMANDS = {
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "worker": _cmd_worker,
    "methods": _cmd_methods,
    "cluster": _cmd_cluster,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Serving and distribution CLI for the partial-search engine.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_serve(sub)
    _add_submit(sub)
    _add_worker(sub)
    _add_methods(sub)
    _add_cluster(sub)
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
