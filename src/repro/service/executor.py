"""The executor seam: where a batched search's shards actually run.

:meth:`repro.engine.SearchEngine.search_batch` splits a batch into
``(B_chunk, N)`` shards under its :class:`~repro.engine.request.ShardPolicy`
and then hands the shard list to a :class:`ShardExecutor`.  The contract is
deliberately tiny — ``run_shards(func, tasks)`` returning results *in task
order* — because everything that matters for reproducibility is decided
before dispatch: shard boundaries come from the plan, and per-target RNG
streams are spawned from the request seed and shipped *inside* the task
payloads.  Any executor that runs every task exactly once therefore returns
bit-identical results, whatever the host, scheduling order, or retry
history.

Three executors ship today:

- :class:`LocalExecutor` — the in-process / process-pool fan-out
  (:func:`repro.util.parallel.parallel_map`), the default.
- :class:`RemoteExecutor` — fans shards out to ``repro-worker`` processes
  (:mod:`repro.service.worker`) over the length-prefixed TCP protocol of
  :mod:`repro.service.wire`, with per-shard timeouts and requeue-on-failure:
  a worker that dies mid-shard loses its connection, its shard goes back on
  the queue, and a surviving worker picks it up.
- :class:`RegistryExecutor` — the auto-discovery form: resolves the worker
  fleet from a live :class:`~repro.service.registry.WorkerRegistry` at
  *each* ``run_shards`` call (workers announce themselves with the wire's
  ``register`` message; the server health-checks them), building a
  per-run :class:`RemoteExecutor` — or running locally while the registry
  is empty.

Future scaling work (new transports, cluster schedulers) plugs in here by
subclassing :class:`ShardExecutor`; the engine and the method adapters do
not change.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.service.wire import ConnectionClosed, WireError, recv_frame, send_frame
from repro.util.parallel import parallel_map
from repro.util.rng import spawn_rngs

__all__ = [
    "ShardExecutor",
    "LocalExecutor",
    "RemoteExecutor",
    "RegistryExecutor",
    "ShardExecutionError",
    "WorkerUnavailable",
    "default_executor",
]


class ShardExecutionError(RuntimeError):
    """A shard function raised on a worker — retrying cannot help."""


class WorkerUnavailable(RuntimeError):
    """No worker could complete the remaining shards (dead/unreachable)."""


class ShardExecutor(ABC):
    """Strategy for executing a list of independent shard tasks."""

    @abstractmethod
    def run_shards(self, func: Callable, tasks: Sequence, *, workers: int = 1) -> list:
        """Run ``func(task, rng)`` for every task; results in task order.

        ``workers`` is the plan's parallelism hint; executors with their own
        notion of width (e.g. one lane per remote worker) may ignore it.
        """

    def describe(self) -> dict:
        """Provenance record merged into ``BatchReport.execution``."""
        return {"executor": type(self).__name__}


class LocalExecutor(ShardExecutor):
    """This-machine execution: serial in-process, or a process pool.

    This is the engine's default and reproduces the PR 2 behaviour exactly:
    ``workers == 1`` runs shards serially in the calling process;
    ``workers > 1`` fans them across a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Args:
        use_processes: force the serial path when ``False`` (handy for
            debugging and for shard functions that are not picklable).
    """

    def __init__(self, use_processes: bool = True):
        self.use_processes = use_processes

    def run_shards(self, func, tasks, *, workers: int = 1) -> list:
        return parallel_map(
            func,
            tasks,
            workers=workers,
            use_processes=self.use_processes and workers > 1,
        )

    def describe(self) -> dict:
        return {"executor": "local"}


def _parse_address(address) -> tuple[str, int]:
    """``"host:port"`` or ``(host, port)`` -> ``(host, port)``."""
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"worker address {address!r} is not 'host:port'")
        return host, int(port)
    host, port = address
    return str(host), int(port)


class RemoteExecutor(ShardExecutor):
    """Fan shards out to ``repro-worker`` processes over TCP.

    One dispatch thread per worker address pulls shards off a shared queue,
    ships each as a ``("shard", func, task, rng)`` frame, and waits for the
    ``("result", value)`` reply.  Failure handling:

    - **transport failure** (connection refused/reset, worker death
      mid-shard, per-shard timeout, or an incompatible peer — wire-version
      mismatch mid-rolling-upgrade, a stray service on the port): the shard
      is requeued for the surviving workers and the failed worker's lane
      shuts down.  Because tasks carry their randomness, a requeued shard
      reproduces the exact result the dead worker would have returned.
    - **shard function error** (the worker ran the shard and it raised):
      deterministic — no retry; the whole run aborts with
      :class:`ShardExecutionError`.

    A shard is attempted at most ``max_attempts`` times (default: once per
    configured worker).  If every worker lane dies with shards outstanding,
    the run falls back to in-process execution when ``fallback_local=True``,
    else raises :class:`WorkerUnavailable`.

    Args:
        addresses: worker endpoints, each ``"host:port"`` or ``(host, port)``.
        timeout: per-shard reply timeout in seconds (covers send + compute +
            receive on one worker).
        connect_timeout: TCP connect timeout per worker.
        max_attempts: per-shard attempt bound; ``None`` = one try per worker.
        fallback_local: run leftover shards in-process instead of raising
            when every worker is gone.
    """

    def __init__(
        self,
        addresses: Sequence,
        *,
        timeout: float = 300.0,
        connect_timeout: float = 5.0,
        max_attempts: int | None = None,
        fallback_local: bool = False,
    ):
        self.addresses = [_parse_address(a) for a in addresses]
        if not self.addresses:
            raise ValueError("RemoteExecutor needs at least one worker address")
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.max_attempts = max_attempts or len(self.addresses)
        self.fallback_local = fallback_local
        #: Stats of the most recent :meth:`run_shards` call (requeues, deaths).
        self.last_run: dict = {}

    # ------------------------------------------------------------ internals
    def _connect(self, address: tuple[str, int]) -> socket.socket:
        sock = socket.create_connection(address, timeout=self.connect_timeout)
        sock.settimeout(self.timeout)
        return sock

    def _serve_lane(self, address, func, state) -> None:
        """One worker lane: pull shards until every shard is done or the
        worker fails.  Any transport failure requeues the in-flight shard
        and ends the lane (the worker is assumed gone or wedged).  An idle
        lane keeps waiting while another lane has a shard in flight — that
        shard may yet be requeued and need picking up."""
        sock = None
        try:
            while not state["fatal"]:
                # Pop and mark in-flight under ONE lock hold: a sibling
                # lane's idle check (queue empty AND nothing in flight)
                # must never interleave between the two, or it could retire
                # while this lane still holds a shard that may be requeued.
                with state["lock"]:
                    try:
                        index = state["pending"].get_nowait()
                    except queue.Empty:
                        if state["in_flight"] == 0:
                            # Nothing queued and nothing in flight anywhere:
                            # either all done, or no lane will requeue again.
                            return
                        index = None
                    else:
                        state["in_flight"] += 1
                        state["attempts"][index] += 1
                        exhausted = (
                            state["attempts"][index] > self.max_attempts
                        )
                if index is None:
                    time.sleep(0.02)  # idle: await a possible requeue
                    continue

                def release(requeue: bool) -> None:
                    with state["lock"]:
                        state["in_flight"] -= 1
                        if requeue:
                            state["pending"].put(index)

                if exhausted:
                    # Over-tried shard: give it back and end the lane so the
                    # run can fail with a coherent report.
                    release(requeue=True)
                    return
                try:
                    if sock is None:
                        sock = self._connect(address)
                    send_frame(sock, ("shard", func, state["tasks"][index],
                                      state["rngs"][index]))
                    reply = recv_frame(sock)
                except (OSError, WireError) as exc:
                    # Worker death mid-shard, refused connection, timeout, or
                    # a peer this process cannot talk to (wire-version
                    # mismatch during a rolling upgrade, a stray service on
                    # a stale registered port): requeue for the other lanes
                    # and retire this one — an unusable worker must degrade
                    # the fleet, never abort the batch.  (ConnectionClosed
                    # is a WireError subclass.)
                    with state["lock"]:
                        state["requeued"] += 1
                        state["dead"].append(
                            {"address": f"{address[0]}:{address[1]}",
                             "error": f"{type(exc).__name__}: {exc}"}
                        )
                    release(requeue=True)
                    return
                if not isinstance(reply, tuple) or not reply:
                    state["fatal"] = f"malformed worker reply: {reply!r}"
                    release(requeue=True)
                    return
                if reply[0] == "error":
                    state["fatal"] = reply[1]
                    release(requeue=True)
                    return
                if reply[0] != "result":
                    state["fatal"] = f"unexpected reply type {reply[0]!r}"
                    release(requeue=True)
                    return
                state["results"][index] = reply[1]
                state["done"][index] = True
                release(requeue=False)
        finally:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass

    # -------------------------------------------------------------- public
    def run_shards(self, func, tasks, *, workers: int = 1) -> list:
        tasks = list(tasks)
        if not tasks:
            return []
        state = {
            "tasks": tasks,
            # Mirror parallel_map's per-task generator argument; shard
            # functions that need reproducible randomness carry pre-spawned
            # generators inside their task payloads instead.
            "rngs": spawn_rngs(None, len(tasks)),
            "results": [None] * len(tasks),
            "done": [False] * len(tasks),
            "attempts": [0] * len(tasks),
            "pending": queue.Queue(),
            "lock": threading.Lock(),
            "in_flight": 0,
            "requeued": 0,
            "dead": [],
            "fatal": None,
        }
        for i in range(len(tasks)):
            state["pending"].put(i)

        threads = [
            threading.Thread(
                target=self._serve_lane, args=(addr, func, state), daemon=True
            )
            for addr in self.addresses
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        self.last_run = {
            "requeued": state["requeued"],
            "dead_workers": list(state["dead"]),
            "local_fallback_shards": 0,
        }
        if state["fatal"]:
            raise ShardExecutionError(
                f"shard function failed on a worker: {state['fatal']}"
            )
        leftover = [i for i, ok in enumerate(state["done"]) if not ok]
        if leftover:
            if not self.fallback_local:
                raise WorkerUnavailable(
                    f"{len(leftover)} shard(s) unfinished after all worker "
                    f"lanes failed: {state['dead']}"
                )
            for i in leftover:
                state["results"][i] = func(tasks[i], state["rngs"][i])
            self.last_run["local_fallback_shards"] = len(leftover)
        return state["results"]

    def describe(self) -> dict:
        return {
            "executor": "remote",
            "workers": [f"{h}:{p}" for h, p in self.addresses],
            "timeout_s": self.timeout,
        }


class RegistryExecutor(ShardExecutor):
    """Dispatch shards to whatever workers are *currently* registered.

    The membership is read from a
    :class:`~repro.service.registry.WorkerRegistry` at each
    :meth:`run_shards` call, so ``repro serve`` no longer needs static
    ``--remote-worker`` wiring: workers that announce themselves (the wire's
    ``register`` message) serve the next batch, health-check evictions stop
    routing to dead hosts, and an empty registry falls back to the local
    executor instead of failing.  Remote dispatch always runs with
    ``fallback_local=True`` — the registry's liveness view necessarily lags
    reality, so a fleet that dies mid-batch must degrade, not abort.

    Args:
        registry: the live membership to resolve per run.
        timeout: per-shard reply timeout handed to each
            :class:`RemoteExecutor`.
        connect_timeout: TCP connect timeout per worker.
    """

    def __init__(self, registry, *, timeout: float = 300.0,
                 connect_timeout: float = 5.0):
        self.registry = registry
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self._local = LocalExecutor()
        #: Stats of the most recent run (addresses used, fallback flag).
        self.last_run: dict = {}

    def _resolve_addresses(self, tasks: list) -> list[str]:
        """The worker fleet for this run — the seam subclasses override
        (e.g. :class:`repro.cluster.ClusterExecutor` ranks the gossiped
        cluster-wide fleet here)."""
        return self.registry.snapshot()

    def run_shards(self, func, tasks, *, workers: int = 1) -> list:
        tasks = list(tasks)
        # One lane per shard is the useful maximum: extra lanes would only
        # hold idle connections (and, for ranked fleets, trimming from the
        # tail keeps the lanes on the best-ranked workers).
        addresses = self._resolve_addresses(tasks)[: max(1, len(tasks))]
        if not addresses:
            self.last_run = {"addresses": [], "local": True}
            return self._local.run_shards(func, tasks, workers=workers)
        remote = RemoteExecutor(
            addresses,
            timeout=self.timeout,
            connect_timeout=self.connect_timeout,
            fallback_local=True,
        )
        try:
            return remote.run_shards(func, tasks, workers=workers)
        finally:
            self.last_run = {"addresses": addresses, "local": False,
                             **remote.last_run}

    def describe(self) -> dict:
        return {
            "executor": "registry",
            "workers": self.registry.snapshot(),
            "timeout_s": self.timeout,
        }


_DEFAULT = LocalExecutor()


def default_executor() -> ShardExecutor:
    """The process-wide default executor (a shared :class:`LocalExecutor`)."""
    return _DEFAULT
