"""The executor seam: where a batched search's shards actually run.

:meth:`repro.engine.SearchEngine.search_batch` splits a batch into
``(B_chunk, N)`` shards under its :class:`~repro.engine.request.ShardPolicy`
and then hands the shard list to a :class:`ShardExecutor`.  The contract is
deliberately tiny — ``run_shards(func, tasks)`` returning results *in task
order* — because everything that matters for reproducibility is decided
before dispatch: shard boundaries come from the plan, and per-target RNG
streams are spawned from the request seed and shipped *inside* the task
payloads.  Any executor that runs every task exactly once therefore returns
bit-identical results, whatever the host, scheduling order, or retry
history.

Three executors ship today:

- :class:`LocalExecutor` — the in-process / process-pool fan-out
  (:func:`repro.util.parallel.parallel_map`), the default.
- :class:`RemoteExecutor` — fans shards out to ``repro-worker`` processes
  (:mod:`repro.service.worker`) over the length-prefixed TCP protocol of
  :mod:`repro.service.wire`, with requeue-on-failure plus the resilience
  layer (:mod:`repro.resilience`): transient transport failures are
  retried with backoff under a per-run retry budget, per-endpoint circuit
  breakers quarantine flapping workers, and the request deadline — read
  from :func:`repro.resilience.current_deadline` or passed explicitly —
  rides each shard frame and bounds each reply wait.
- :class:`RegistryExecutor` — the auto-discovery form: resolves the worker
  fleet from a live :class:`~repro.service.registry.WorkerRegistry` at
  *each* ``run_shards`` call (workers announce themselves with the wire's
  ``register`` message; the server health-checks them), filters out
  breaker-quarantined endpoints, and builds a per-run
  :class:`RemoteExecutor` — or runs locally while the registry is empty.

Future scaling work (new transports, cluster schedulers) plugs in here by
subclassing :class:`ShardExecutor`; the engine and the method adapters do
not change.
"""

from __future__ import annotations

import collections
import queue
import random
import re
import socket
import threading
import time
from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.observability.spans import (
    Span,
    capture_span_context,
    span,
    span_scope,
)
from repro.resilience import (
    BreakerRegistry,
    Deadline,
    DeadlineExceeded,
    RetryBudget,
    RetryPolicy,
    current_deadline,
)
from repro.service.address import format_address, parse_address
from repro.service.wire import (
    MIN_WIRE_VERSION,
    WIRE_VERSION,
    ConnectionClosed,
    WireError,
    recv_frame,
    send_frame,
)
from repro.util.parallel import parallel_map
from repro.util.rng import spawn_rngs

__all__ = [
    "ShardExecutor",
    "LocalExecutor",
    "RemoteExecutor",
    "RegistryExecutor",
    "ShardExecutionError",
    "WorkerUnavailable",
    "default_executor",
    "required_kernel_backend",
]

# Shared by worker registration, server handlers, peering, and gossip —
# kept importable under the old private name for compatibility.
_parse_address = parse_address


def required_kernel_backend(tasks) -> str:
    """The kernel backend the shard tasks execute under.

    Shard tasks of the kernels-backed methods carry the batch's resolved
    :class:`~repro.kernels.ExecutionPolicy` (every shard of one plan shares
    it), so inspecting the first task suffices.  Tasks without a policy —
    the circuit and classical methods, or custom executor payloads — run
    the ``"numpy"`` baseline every worker has, so they need no routing
    filter and no shard-meta key.
    """
    if not tasks or not isinstance(tasks[0], tuple):
        return "numpy"
    from repro.kernels import ExecutionPolicy

    for element in tasks[0]:
        if isinstance(element, ExecutionPolicy):
            return element.backend
    return "numpy"


class ShardExecutionError(RuntimeError):
    """A shard function raised on a worker — retrying cannot help."""


class WorkerUnavailable(RuntimeError):
    """No worker could complete the remaining shards (dead/unreachable).

    Attributes:
        attempt_history: per-shard list of ``{"address", "error"}`` dicts
            for the shards that exhausted their attempt bound (a poison
            shard's paper trail), when that is why the run failed.
    """

    def __init__(self, message: str, *, attempt_history=None):
        super().__init__(message)
        self.attempt_history = attempt_history or {}


class ShardExecutor(ABC):
    """Strategy for executing a list of independent shard tasks."""

    @abstractmethod
    def run_shards(self, func: Callable, tasks: Sequence, *, workers: int = 1,
                   deadline: Deadline | None = None) -> list:
        """Run ``func(task, rng)`` for every task; results in task order.

        ``workers`` is the plan's parallelism hint; executors with their own
        notion of width (e.g. one lane per remote worker) may ignore it.
        ``deadline`` bounds the whole call (``None`` reads the ambient
        :func:`repro.resilience.current_deadline`); executors raise
        :class:`~repro.resilience.DeadlineExceeded` rather than start work
        nobody will wait for.
        """

    def describe(self) -> dict:
        """Provenance record merged into ``BatchReport.execution``."""
        return {"executor": type(self).__name__}


class LocalExecutor(ShardExecutor):
    """This-machine execution: serial in-process, or a process pool.

    This is the engine's default and reproduces the PR 2 behaviour exactly:
    ``workers == 1`` runs shards serially in the calling process;
    ``workers > 1`` fans them across a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Args:
        use_processes: force the serial path when ``False`` (handy for
            debugging and for shard functions that are not picklable).
    """

    def __init__(self, use_processes: bool = True):
        self.use_processes = use_processes

    def run_shards(self, func, tasks, *, workers: int = 1,
                   deadline: Deadline | None = None) -> list:
        if deadline is None:
            deadline = current_deadline()
        if deadline is not None:
            deadline.raise_if_expired("batch")
        with span("dispatch", executor="local", shards=len(tasks),
                  workers=workers):
            return parallel_map(
                func,
                tasks,
                workers=workers,
                use_processes=self.use_processes and workers > 1,
            )

    def describe(self) -> dict:
        return {"executor": "local"}


#: Parses "this process speaks v2..v3" out of a peer's version-mismatch
#: error reply — the negotiation hook a newer dialer downgrades through.
_PEER_MAX_VERSION = re.compile(r"speaks v\d+\.\.v(\d+)")


def _is_permanent_transport(exc: Exception) -> bool:
    """True for transport failures retrying cannot fix: a peer that is not
    speaking the repro protocol at all (bad magic — a stray service on a
    stale registered port), or one announcing a *newer* wire version than
    this build decodes.  Undecodable payloads and closed connections stay
    retriable — they can be transient (corruption, a worker restart)."""
    if not isinstance(exc, WireError) or isinstance(exc, ConnectionClosed):
        return False
    text = str(exc)
    return "bad frame magic" in text or "wire version mismatch" in text


def _downgrade_version(error_message: str) -> int | None:
    """The peer's maximum wire version, if *error_message* is the standard
    version-mismatch reply; ``None`` for any other error."""
    match = _PEER_MAX_VERSION.search(str(error_message))
    if match is None:
        return None
    peer_max = int(match.group(1))
    if MIN_WIRE_VERSION <= peer_max < WIRE_VERSION:
        return peer_max
    return None


class RemoteExecutor(ShardExecutor):
    """Fan shards out to ``repro-worker`` processes over TCP.

    One dispatch thread per worker address pulls shards off a shared queue,
    ships each as a ``("shard", func, task, rng, meta)`` frame (``meta``
    carries the remaining deadline budget; legacy v2/v3 lanes fall back to
    the 4-tuple form), and waits for the ``("result", value)`` reply.
    Failure handling:

    - **transport failure** (connection refused/reset, worker death
      mid-shard, per-shard timeout, an undecodable frame, or a draining
      worker's ``unavailable`` reply): the shard is requeued immediately so
      any lane can pick it up, the endpoint's circuit breaker records the
      failure, and the lane retries *its own* worker with decorrelated-
      jitter backoff while the per-run :class:`~repro.resilience.RetryBudget`
      lasts — then retires.  Because tasks carry their randomness, a
      requeued shard reproduces the exact result the dead worker would
      have returned.
    - **shard function error** (the worker ran the shard and it raised):
      deterministic — no retry; the whole run aborts with
      :class:`ShardExecutionError`.
    - **deadline exhaustion**: dispatch stops and the run raises
      :class:`~repro.resilience.DeadlineExceeded` (workers likewise skip
      shards whose shipped budget arrives spent).

    A shard is attempted at most ``max_attempts`` times; a shard that
    exceeds the bound (a *poison* shard crashing worker after worker) fails
    the run with :class:`WorkerUnavailable` carrying the full per-attempt
    history instead of cycling forever.  If every worker lane dies with
    shards outstanding, the run falls back to in-process execution when
    ``fallback_local=True``, else raises :class:`WorkerUnavailable`.

    Args:
        addresses: worker endpoints, each ``"host:port"``, ``"[v6]:port"``,
            or ``(host, port)``.
        timeout: per-shard reply ceiling in seconds (covers send + compute +
            receive on one worker); the live deadline can only tighten it.
        connect_timeout: TCP connect timeout per worker.
        max_attempts: per-shard attempt bound; ``None`` = one try per worker
            plus the retry headroom (``len(addresses) + retry.max_attempts``).
        fallback_local: run leftover shards in-process instead of raising
            when every worker is gone.
        retry: transient-failure :class:`~repro.resilience.RetryPolicy`
            (``None`` = the default policy).
        retry_budget: retry tokens per :meth:`run_shards` call shared by all
            lanes; ``None`` sizes it as ``max(4, len(tasks))``.
        breakers: shared :class:`~repro.resilience.BreakerRegistry`
            (``None`` = a private registry, scoped to this executor).
        chaos: optional :class:`~repro.resilience.FaultPlan` consulted at
            ``executor.connect`` (dial faults for tests).
    """

    def __init__(
        self,
        addresses: Sequence,
        *,
        timeout: float = 300.0,
        connect_timeout: float = 5.0,
        max_attempts: int | None = None,
        fallback_local: bool = False,
        retry: RetryPolicy | None = None,
        retry_budget: int | None = None,
        breakers: BreakerRegistry | None = None,
        chaos=None,
    ):
        self.addresses = [parse_address(a) for a in addresses]
        if not self.addresses:
            raise ValueError("RemoteExecutor needs at least one worker address")
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.retry_budget = retry_budget
        self.breakers = breakers if breakers is not None else BreakerRegistry()
        self.chaos = chaos
        self.max_attempts = max_attempts or (
            len(self.addresses) + self.retry.max_attempts
        )
        self.fallback_local = fallback_local
        #: Stats of the most recent :meth:`run_shards` call (requeues,
        #: deaths, retries, breaker skips).
        self.last_run: dict = {}

    # ------------------------------------------------------------ internals
    def _connect(self, address: tuple[str, int]) -> socket.socket:
        if self.chaos is not None:
            spec = self.chaos.apply(self.chaos.visit("executor.connect"))
            if spec is not None and spec.kind == "refuse":
                raise ConnectionRefusedError(
                    f"chaos: connection to {format_address(*address)} refused"
                )
        sock = socket.create_connection(address, timeout=self.connect_timeout)
        sock.settimeout(self.timeout)
        return sock

    def _record_failure(self, state, index, endpoint, exc) -> None:
        with state["lock"]:
            state["requeued"] += 1
            state["history"][index].append(
                {"address": endpoint, "error": f"{type(exc).__name__}: {exc}"}
            )

    def _serve_lane(self, address, func, state) -> None:
        """One worker lane: pull shards until every shard is done or the
        worker fails permanently.  A transport failure requeues the
        in-flight shard immediately (any lane can pick it up), records it
        on the endpoint's breaker, and — while the run's retry budget
        lasts — backs off and retries this worker; once the lane's
        consecutive failures reach the retry policy's bound, or the budget
        is dry, the lane retires.  An idle lane keeps waiting while
        another lane has a shard in flight — that shard may yet be
        requeued and need picking up."""
        # Lanes are plain threads: re-enter the dispatch span context
        # captured in run_shards so attempt spans parent correctly (the
        # same capture/re-enter hop the trace ID and deadline make).
        recorder, parent_id = state["span_ctx"]
        with span_scope(recorder, parent_id):
            self._lane_loop(address, func, state)

    def _lane_loop(self, address, func, state) -> None:
        endpoint = format_address(*address)
        breaker = self.breakers.get(endpoint)
        deadline: Deadline | None = state["deadline"]
        jitter = random.Random(hash((endpoint, len(state["tasks"]))))
        lane_version: int | None = None  # None = this build's WIRE_VERSION
        lane_failures = 0
        lane_error: str | None = None  # last unrecovered transport failure
        last_delay = 0.0
        sock = None

        if not breaker.allow():
            with state["lock"]:
                state["breaker_skips"].append(endpoint)
            # A quarantined lane never dials, but the trace should still
            # show *why* this worker contributed nothing.
            with span("shard.breaker_open", endpoint=endpoint):
                pass
            return

        def halt(reason_key, value) -> None:
            with state["lock"]:
                if state[reason_key] is None:
                    state[reason_key] = value

        def mark_dead() -> None:
            # A lane that *ends* in a failing state goes on the dead list
            # (a failure recovered by a later success does not).
            if lane_error is not None:
                with state["lock"]:
                    state["dead"].append(
                        {"address": endpoint, "error": lane_error}
                    )

        try:
            while state["fatal"] is None and state["poisoned"] is None \
                    and not state["expired"]:
                # Pop and mark in-flight under ONE lock hold: a sibling
                # lane's idle check (queue empty AND nothing in flight)
                # must never interleave between the two, or it could retire
                # while this lane still holds a shard that may be requeued.
                with state["lock"]:
                    try:
                        index = state["pending"].get_nowait()
                    except queue.Empty:
                        if state["in_flight"] == 0:
                            # Nothing queued and nothing in flight anywhere:
                            # either all done, or no lane will requeue again.
                            if lane_error is not None:
                                state["dead"].append(
                                    {"address": endpoint, "error": lane_error}
                                )
                            return
                        index = None
                    else:
                        state["in_flight"] += 1
                        state["attempts"][index] += 1
                        exhausted = (
                            state["attempts"][index] > self.max_attempts
                        )
                if index is None:
                    time.sleep(0.02)  # idle: await a possible requeue
                    continue

                def release(requeue: bool) -> None:
                    with state["lock"]:
                        state["in_flight"] -= 1
                        if requeue:
                            state["pending"].put(index)

                if exhausted:
                    # Poison shard: it has crashed or timed out every
                    # attempt it was given.  Fail the run with its history
                    # — requeueing again would cycle forever.
                    halt("poisoned", index)
                    release(requeue=False)
                    return
                if deadline is not None and deadline.expired:
                    halt("expired", True)
                    release(requeue=True)
                    return
                # Each dispatch attempt is its own span (so retries show
                # as siblings), with the wire leg as a child; the worker
                # parents its compute span on this attempt's ID, shipped
                # in the shard meta.
                with span("shard.attempt", shard=index, endpoint=endpoint,
                          attempt=state["attempts"][index]) as att:
                    try:
                        if sock is None:
                            sock = self._connect(address)
                        message = self._shard_message(
                            func, state["tasks"][index], state["rngs"][index],
                            deadline, lane_version, state["trace_id"],
                            att.span_id, state["kernel_backend"],
                        )
                        if deadline is not None:
                            sock.settimeout(
                                min(self.timeout, deadline.budget(0.001))
                            )
                        with span("wire.roundtrip", endpoint=endpoint):
                            send_frame(sock, message, version=lane_version)
                            reply = recv_frame(sock)
                    except (OSError, WireError) as exc:
                        # Worker death mid-shard, refused connection,
                        # timeout, or an undecodable/corrupt frame: requeue
                        # for any lane (this one included), tell the
                        # breaker, and retry this worker with backoff while
                        # the run's budget lasts — an unusable worker must
                        # degrade the fleet, never abort the batch.
                        # (ConnectionClosed is a WireError subclass.)
                        att.status = "error"
                        att.attrs["outcome"] = (
                            f"transport-failure:{type(exc).__name__}"
                        )
                        self._close(sock)
                        sock = None
                        breaker.record_failure()
                        self._record_failure(state, index, endpoint, exc)
                        release(requeue=True)
                        lane_failures += 1
                        lane_error = f"{type(exc).__name__}: {exc}"
                        if _is_permanent_transport(exc) \
                                or lane_failures >= self.retry.max_attempts \
                                or not breaker.allow() \
                                or not state["budget"].take():
                            mark_dead()
                            return
                        with state["lock"]:
                            state["retries"] += 1
                        last_delay = self.retry.next_delay(last_delay, jitter)
                        if deadline is not None:
                            last_delay = min(last_delay, deadline.budget(0.0))
                        att.attrs["backoff_s"] = round(last_delay, 4)
                        time.sleep(last_delay)
                        continue
                if not isinstance(reply, tuple) or not reply:
                    att.status = "error"
                    att.attrs["outcome"] = "malformed-reply"
                    halt("fatal", f"malformed worker reply: {reply!r}")
                    release(requeue=True)
                    return
                att.attrs["outcome"] = str(reply[0])
                if reply[0] == "unavailable":
                    # The worker is draining: requeue elsewhere and retire
                    # this lane without charging the breaker — a graceful
                    # goodbye is not a failure.
                    with state["lock"]:
                        state["requeued"] += 1
                        state["dead"].append(
                            {"address": endpoint,
                             "error": f"draining: {reply[1] if len(reply) > 1 else ''}"}
                        )
                    release(requeue=True)
                    return
                if reply[0] == "expired":
                    # The worker refused a shard whose budget arrived spent
                    # — the whole run is past its deadline.
                    halt("expired", True)
                    release(requeue=True)
                    return
                if reply[0] == "error":
                    peer_max = _downgrade_version(
                        reply[1] if len(reply) > 1 else ""
                    )
                    if peer_max is not None and lane_version is None:
                        # A legacy (v2/v3) acceptor rejected our v4 frame:
                        # pin the lane to the peer's maximum and resend in
                        # the legacy shard form.  Deadline enforcement for
                        # this lane degrades to the dialer-side timeout.
                        att.attrs["outcome"] = f"wire-downgrade:v{peer_max}"
                        lane_version = peer_max
                        self._close(sock)
                        sock = None
                        with state["lock"]:
                            state["downgraded"][endpoint] = peer_max
                        release(requeue=True)
                        continue
                    att.status = "error"
                    halt("fatal", reply[1] if len(reply) > 1 else "error")
                    release(requeue=True)
                    return
                if reply[0] != "result":
                    halt("fatal", f"unexpected reply type {reply[0]!r}")
                    release(requeue=True)
                    return
                state["results"][index] = reply[1]
                state["done"][index] = True
                # Traced shards reply ("result", value, {"spans": [...]}):
                # stitch the worker-side spans (already parented on this
                # attempt's ID) into the request's recorder.
                recorder = state["span_ctx"][0]
                if recorder is not None and len(reply) > 2 \
                        and isinstance(reply[2], dict):
                    shipped = reply[2].get("spans") or ()
                    recorder.extend(
                        [Span.from_dict(d) for d in shipped
                         if isinstance(d, dict)]
                    )
                release(requeue=False)
                breaker.record_success()
                lane_failures = 0
                lane_error = None
                last_delay = 0.0
        finally:
            self._close(sock)

    @staticmethod
    def _shard_message(func, task, rng, deadline, lane_version,
                       trace_id=None, parent_span_id=None,
                       kernel_backend=None) -> tuple:
        """The shard frame: v4 ships the remaining budget (and, when the
        request is traced, its trace ID and the dispatch-attempt span ID
        the worker parents its compute span on) in a meta dict; lanes
        pinned to a legacy peer send the pre-deadline 4-tuple.  Adding
        meta keys is a *compatible* growth — old workers ignore unknown
        keys — so tracing needs no wire version bump.

        A non-numpy *kernel_backend* rides as ``meta["backend"]`` so a
        worker lacking it answers ``("unavailable", ...)`` — the shard
        requeues on a capable lane instead of dying inside the shard
        function.  The numpy baseline ships no key at all: absent key ==
        ``"numpy"`` is the compatibility rule, and old workers must keep
        decoding today's frames unchanged.
        """
        if lane_version is not None and lane_version < 4:
            return ("shard", func, task, rng)
        meta = {}
        if deadline is not None:
            meta["deadline_s"] = deadline.remaining()
        if trace_id is not None:
            meta["trace_id"] = trace_id
            if parent_span_id is not None:
                meta["parent_span_id"] = parent_span_id
        if kernel_backend is not None and kernel_backend != "numpy":
            meta["backend"] = kernel_backend
        return ("shard", func, task, rng, meta)

    @staticmethod
    def _close(sock) -> None:
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -------------------------------------------------------------- public
    def run_shards(self, func, tasks, *, workers: int = 1,
                   deadline: Deadline | None = None) -> list:
        tasks = list(tasks)
        if not tasks:
            return []
        if deadline is None:
            deadline = current_deadline()
        # Captured here, in the caller's context: lanes are plain threads,
        # and contextvars do not follow work across the thread boundary.
        from repro.gateway.tracing import current_trace_id

        budget = self.retry_budget
        state = {
            "trace_id": current_trace_id(),
            "kernel_backend": required_kernel_backend(tasks),
            "tasks": tasks,
            # Mirror parallel_map's per-task generator argument; shard
            # functions that need reproducible randomness carry pre-spawned
            # generators inside their task payloads instead.
            "rngs": spawn_rngs(None, len(tasks)),
            "results": [None] * len(tasks),
            "done": [False] * len(tasks),
            "attempts": [0] * len(tasks),
            "history": collections.defaultdict(list),
            "pending": queue.Queue(),
            "lock": threading.Lock(),
            "in_flight": 0,
            "requeued": 0,
            "retries": 0,
            "dead": [],
            "breaker_skips": [],
            "downgraded": {},
            "fatal": None,
            "poisoned": None,
            "expired": False,
            "deadline": deadline,
            "budget": RetryBudget(
                max(4, len(tasks)) if budget is None else budget
            ),
        }
        for i in range(len(tasks)):
            state["pending"].put(i)

        # The dispatch span brackets the whole fan-out (lanes re-enter the
        # captured context, so attempt spans become its children); failures
        # raised below mark it errored on the way out.
        with span("dispatch", executor="remote", shards=len(tasks),
                  lanes=len(self.addresses)):
            state["span_ctx"] = capture_span_context()
            threads = [
                threading.Thread(
                    target=self._serve_lane, args=(addr, func, state),
                    daemon=True,
                )
                for addr in self.addresses
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return self._finish_run(func, tasks, state, deadline)

    def _finish_run(self, func, tasks, state, deadline) -> list:
        self.last_run = {
            "requeued": state["requeued"],
            "retries": state["retries"],
            "dead_workers": list(state["dead"]),
            "breaker_skips": list(state["breaker_skips"]),
            "downgraded_lanes": dict(state["downgraded"]),
            "local_fallback_shards": 0,
        }
        if state["fatal"] is not None:
            raise ShardExecutionError(
                f"shard function failed on a worker: {state['fatal']}"
            )
        if state["poisoned"] is not None:
            index = state["poisoned"]
            history = {i: list(h) for i, h in state["history"].items()}
            raise WorkerUnavailable(
                f"shard {index} exhausted its {self.max_attempts}-attempt "
                f"bound (a poison shard?); attempts: {history.get(index, [])}",
                attempt_history=history,
            )
        if state["expired"] or (deadline is not None and deadline.expired):
            unfinished = sum(1 for ok in state["done"] if not ok)
            if unfinished:
                raise DeadlineExceeded(
                    f"request deadline exhausted with {unfinished} shard(s) "
                    f"undispatched"
                )
        leftover = [i for i, ok in enumerate(state["done"]) if not ok]
        if leftover:
            if not self.fallback_local:
                raise WorkerUnavailable(
                    f"{len(leftover)} shard(s) unfinished after all worker "
                    f"lanes failed: {state['dead'] or state['breaker_skips']}",
                    attempt_history={
                        i: list(h) for i, h in state["history"].items()
                    },
                )
            for i in leftover:
                state["results"][i] = func(tasks[i], state["rngs"][i])
            self.last_run["local_fallback_shards"] = len(leftover)
        return state["results"]

    def describe(self) -> dict:
        return {
            "executor": "remote",
            "workers": [format_address(h, p) for h, p in self.addresses],
            "timeout_s": self.timeout,
            "retry": self.retry.describe(),
        }


class RegistryExecutor(ShardExecutor):
    """Dispatch shards to whatever workers are *currently* registered.

    The membership is read from a
    :class:`~repro.service.registry.WorkerRegistry` at each
    :meth:`run_shards` call, so ``repro serve`` no longer needs static
    ``--remote-worker`` wiring: workers that announce themselves (the wire's
    ``register`` message) serve the next batch, health-check evictions stop
    routing to dead hosts, and an empty registry falls back to the local
    executor instead of failing.  The executor's
    :class:`~repro.resilience.BreakerRegistry` persists across runs — a
    worker that kept failing is quarantined out of the candidate fleet
    until its half-open probe readmits it — and remote dispatch always runs
    with ``fallback_local=True``: the registry's liveness view necessarily
    lags reality, so a fleet that dies mid-batch must degrade, not abort.

    Args:
        registry: the live membership to resolve per run.
        timeout: per-shard reply timeout handed to each
            :class:`RemoteExecutor`.
        connect_timeout: TCP connect timeout per worker.
        retry: transient-failure policy for the per-run remote executors.
        breakers: shared breaker registry (``None`` = one private to this
            executor, still persistent across runs).
        chaos: optional :class:`~repro.resilience.FaultPlan` handed to the
            per-run remote executors.
    """

    def __init__(self, registry, *, timeout: float = 300.0,
                 connect_timeout: float = 5.0,
                 retry: RetryPolicy | None = None,
                 breakers: BreakerRegistry | None = None,
                 chaos=None):
        self.registry = registry
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.breakers = breakers if breakers is not None else BreakerRegistry()
        self.chaos = chaos
        self._local = LocalExecutor()
        #: Stats of the most recent run (addresses used, fallback flag).
        self.last_run: dict = {}

    def _resolve_addresses(self, tasks: list) -> list[str]:
        """The worker fleet for this run — the seam subclasses override
        (e.g. :class:`repro.cluster.ClusterExecutor` ranks the gossiped
        cluster-wide fleet here).  Tasks requiring a non-numpy kernel
        backend only see workers that advertised it, so a ``numba`` batch
        on a mixed fleet routes past the numpy-only workers up front
        (the shard-meta ``unavailable`` reply remains the backstop for
        stale capability views)."""
        backend = required_kernel_backend(tasks)
        if backend != "numpy":
            return self.registry.snapshot(backend=backend)
        return self.registry.snapshot()

    def run_shards(self, func, tasks, *, workers: int = 1,
                   deadline: Deadline | None = None) -> list:
        tasks = list(tasks)
        if deadline is None:
            deadline = current_deadline()
        with span("dispatch.resolve") as resolve:
            candidates = self._resolve_addresses(tasks)
            # Quarantined endpoints are filtered out before lanes are
            # built: an open breaker means "recently kept failing", and
            # half-open endpoints stay dialable so they can earn their way
            # back in.
            addresses, quarantined = self.breakers.partition(candidates)
            resolve.attrs["candidates"] = len(candidates)
            resolve.attrs["quarantined"] = len(quarantined)
        # One lane per shard is the useful maximum: extra lanes would only
        # hold idle connections (and, for ranked fleets, trimming from the
        # tail keeps the lanes on the best-ranked workers).
        addresses = addresses[: max(1, len(tasks))]
        if not addresses:
            self.last_run = {"addresses": [], "local": True,
                             "quarantined": quarantined}
            return self._local.run_shards(func, tasks, workers=workers,
                                          deadline=deadline)
        remote = RemoteExecutor(
            addresses,
            timeout=self.timeout,
            connect_timeout=self.connect_timeout,
            fallback_local=True,
            retry=self.retry,
            breakers=self.breakers,
            chaos=self.chaos,
        )
        try:
            return remote.run_shards(func, tasks, workers=workers,
                                     deadline=deadline)
        finally:
            self.last_run = {"addresses": addresses, "local": False,
                             "quarantined": quarantined,
                             **remote.last_run}

    def describe(self) -> dict:
        return {
            "executor": "registry",
            "workers": self.registry.snapshot(),
            "timeout_s": self.timeout,
        }


_DEFAULT = LocalExecutor()


def default_executor() -> ShardExecutor:
    """The process-wide default executor (a shared :class:`LocalExecutor`)."""
    return _DEFAULT
