"""TTL result cache and the structural request fingerprint that keys it.

The serving layer memoises completed reports: two clients asking for the
same search within the TTL share one execution.  The key is a **structural
fingerprint** of the request — the fields that determine the *result*
(geometry, method, backend, epsilon, target(s), options, seed) — and
deliberately excludes the fields that only determine *how* it runs: the
shard policy and executor are bit-invisible in the output (that invariance
is pinned by the engine's shard tests), so a sharded run may serve a cache
hit for an unsharded request and vice versa.

Requests carrying a live ``numpy.random.Generator`` are uncacheable (the
generator's future draws are part of the input and are consumed by the
run); :func:`request_fingerprint` returns ``None`` for them and the service
executes such requests unconditionally.  Requests with ``rng=None`` or an
integer seed are cached like any other — clients that need fresh stochastic
draws per call should send distinct seeds.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from threading import Lock

import numpy as np

__all__ = ["TTLCache", "request_fingerprint"]

_MISSING = object()


def _stable(value) -> str:
    """A deterministic textual form for fingerprint components.

    Dataclass reprs (schedules, block specs) are stable across processes;
    numpy arrays hash their raw bytes; mappings sort their keys.
    """
    if isinstance(value, np.ndarray):
        return f"ndarray{value.shape}{value.dtype}:" + hashlib.sha256(
            np.ascontiguousarray(value).tobytes()
        ).hexdigest()
    if isinstance(value, dict):
        inner = ",".join(f"{k}={_stable(v)}" for k, v in sorted(value.items()))
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_stable(v) for v in value) + "]"
    return repr(value)


def request_fingerprint(request, targets=None) -> str | None:
    """Structural fingerprint of ``(request, targets)``, or ``None``.

    ``None`` means "do not cache": the request carries a live RNG whose
    state advances when the search runs.  ``targets`` follows the
    :meth:`~repro.engine.SearchEngine.search_batch` convention (``None`` =
    all addresses, which fingerprints distinctly from an explicit list).
    """
    if isinstance(request.rng, np.random.Generator):
        return None
    dtype = request.policy.dtype
    # The kernel backend is structural only at complex64: complex128
    # results are bit-identical across backends (pinned by the backend
    # matrix tests), so pinning it there would split the cache between
    # provably equal results; complex64 backends agree only to tolerance,
    # and a cache must never swap one approximate bitstream for another.
    # "auto" resolves through the calibration probe so the fingerprint
    # names the backend that would actually run.
    kernel_backend = request.policy.backend
    if dtype == "complex64" and kernel_backend == "auto":
        try:
            from repro.kernels import probe_fastest_backend

            kernel_backend = probe_fastest_backend()
        except Exception:
            pass
    try:
        from repro.engine.registry import get_method

        # Methods that ignore the ExecutionPolicy have it normalised away
        # by the engine before execution (engine.py), so a complex64
        # request and a complex128 request produce the identical run —
        # fingerprint them identically too, or provably equal requests
        # would split the cache and defeat coalescing/peering.  Unknown
        # methods fall back to the raw dtype (the engine would reject the
        # request anyway).
        if not get_method(request.method).honours_policy:
            dtype = "complex128"
    except Exception:
        pass
    backend_part = (f"kernel_backend={kernel_backend}"
                    if dtype == "complex64" else "kernel_backend=<any>")
    # The engine tier is structural: an analytic answer and a simulated one
    # are different results (closed-form exact vs statevector float path)
    # and must not share an entry.  Within the analytic tier the execution
    # policy and simulator backend are irrelevant — no kernel ever runs —
    # so they normalise away and a complex64 probability request shares the
    # closed-form answer with a complex128 one.
    tier = "simulate"
    if getattr(request, "engine", "auto") != "simulate":
        try:
            from repro.analytic import resolve_engine_tier

            tier = resolve_engine_tier(request)
        except Exception:
            tier = "simulate"
    if tier == "analytic":
        dtype = "complex128"
        backend_part = "kernel_backend=<any>"
    parts = [
        # v5: the resolved engine tier became structural (new tier
        # component; analytic entries normalise the kernel fields away).
        # v4: the kernel backend became structural at complex64 (new
        # backend_part component).  Fingerprints are opaque keys, so the
        # version bump just makes old/new replicas miss instead of
        # colliding during a rolling upgrade.
        "fingerprint-v5",
        f"tier={tier}",
        f"n_items={request.n_items}",
        f"n_blocks={request.n_blocks}",
        f"method={request.method}",
        f"backend={request.backend}",
        f"epsilon={request.epsilon}",
        f"target={request.target}",
        f"trace={request.trace}",
        f"rng={request.rng!r}",
        # Only the dtype is structural: row_threads (like the shard policy)
        # is bit-invisible in the output, but complex64 results genuinely
        # differ from complex128 and must not share a cache entry —
        # except for policy-blind methods, normalised above.  The kernel
        # backend joins it at complex64 only (see backend_part above).
        f"dtype={dtype}",
        backend_part,
        f"options={_stable(dict(request.options))}",
        "targets=<all>" if targets is None else f"targets={_stable(np.asarray(targets))}",
    ]
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


class TTLCache:
    """A thread-safe LRU cache whose entries expire after a fixed TTL.

    Memory is bounded two ways: at most ``maxsize`` entries live at once
    (least-recently-used evicted first), and entries older than ``ttl``
    seconds are dropped on access or insert.

    Args:
        maxsize: entry bound (``0`` disables caching entirely).
        ttl: seconds an entry stays valid.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(self, maxsize: int = 256, ttl: float = 300.0, clock=time.monotonic):
        if maxsize < 0:
            raise ValueError(f"maxsize={maxsize} must be >= 0")
        if ttl <= 0:
            raise ValueError(f"ttl={ttl} must be positive")
        self.maxsize = maxsize
        self.ttl = ttl
        self._clock = clock
        self._entries: OrderedDict[str, tuple[float, object]] = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _purge_expired(self, now: float) -> None:
        # The dict is LRU-ordered (get() moves entries to the end), NOT
        # stamp-ordered, so expiry needs a full scan — cheap, since maxsize
        # bounds the entry count.
        expired = [
            key for key, (stamp, _) in self._entries.items()
            if now - stamp >= self.ttl
        ]
        for key in expired:
            del self._entries[key]
            self.evictions += 1

    def get(self, key: str | None, default=None):
        """The cached value for *key*, or *default* (``None`` keys miss)."""
        if key is None or self.maxsize == 0:
            self.misses += 1
            return default
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self.misses += 1
                return default
            stamp, value = entry
            if now - stamp >= self.ttl:
                del self._entries[key]
                self.evictions += 1
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def peek(self, key: str | None, default=None):
        """Like :meth:`get`, but invisible: no LRU promotion, no counters.

        Cache *peering* (:mod:`repro.cluster.peering`) probes this replica
        on behalf of a remote one; those probes must not distort the local
        hit/miss statistics or keep entries alive that local traffic has
        stopped touching.  Expired entries still miss (but are left for the
        next mutating operation to purge).
        """
        if key is None or self.maxsize == 0:
            return default
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                return default
            stamp, value = entry
            if now - stamp >= self.ttl:
                return default
            return value

    def put(self, key: str | None, value) -> None:
        """Insert *value* (no-op for ``None`` keys / zero-sized cache)."""
        if key is None or self.maxsize == 0:
            return
        now = self._clock()
        with self._lock:
            self._purge_expired(now)
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (now, value)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict:
        """``{size, maxsize, ttl, hits, misses, evictions}``."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "ttl_s": self.ttl,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
