"""repro.service — distributed shard execution and async serving.

Two layers grow the single-machine engine into a serving system:

1. **Executor layer** (:mod:`repro.service.executor`): the
   :class:`ShardExecutor` seam :meth:`repro.engine.SearchEngine.search_batch`
   dispatches its ``(B_chunk, N)`` shards through.  :class:`LocalExecutor`
   wraps the in-process / process-pool fan-out that PR 2 shipped;
   :class:`RemoteExecutor` speaks a small length-prefixed TCP protocol
   (:mod:`repro.service.wire`) to ``repro-worker`` processes
   (:mod:`repro.service.worker`) on other hosts;
   :class:`RegistryExecutor` resolves the fleet per batch from a
   :class:`WorkerRegistry` that workers join by announcing themselves
   (``repro-worker --register``) and the server health-checks.  Shard
   boundaries and per-target RNG streams are fixed *before* dispatch, so
   every executor returns bit-identical results.

2. **Serving layer** (:mod:`repro.service.scheduler` /
   :mod:`repro.service.server`): an :mod:`asyncio`-based
   :class:`SearchService` with a bounded job queue, backpressure, per-request
   timeouts, and a TTL result cache keyed by each request's structural
   fingerprint, exposed over TCP by :class:`SearchServer` and driven by the
   ``repro serve`` / ``repro submit`` CLI (:mod:`repro.service.cli`).

Above both sits :mod:`repro.cluster`: gossip membership that federates
several ``repro serve`` replicas (``--join``), cache peering between their
TTL caches, and cluster-wide scheduling over every member's registered
workers.

Trust model: frames carry pickled payloads, so workers and servers must only
be exposed to trusted hosts (a cluster-internal network), never the open
internet.  The wire format is versioned and negotiates across one version of
skew — see :data:`repro.service.wire.WIRE_VERSION` and
:data:`repro.service.wire.MIN_WIRE_VERSION`.
"""

from repro.service.cache import TTLCache, request_fingerprint
from repro.service.executor import (
    LocalExecutor,
    RegistryExecutor,
    RemoteExecutor,
    ShardExecutionError,
    ShardExecutor,
    WorkerUnavailable,
)
from repro.service.registry import WorkerRegistry
from repro.service.scheduler import SearchService, ServiceOverloaded, ServiceStats
from repro.service.server import SearchServer, cluster_status, submit_remote
from repro.service.worker import WorkerServer, register_with_server
from repro.service.wire import (
    MIN_WIRE_VERSION,
    WIRE_VERSION,
    ConnectionClosed,
    WireError,
)

__all__ = [
    "TTLCache",
    "request_fingerprint",
    "ShardExecutor",
    "LocalExecutor",
    "RemoteExecutor",
    "RegistryExecutor",
    "WorkerRegistry",
    "ShardExecutionError",
    "WorkerUnavailable",
    "SearchService",
    "ServiceOverloaded",
    "ServiceStats",
    "SearchServer",
    "submit_remote",
    "cluster_status",
    "WorkerServer",
    "register_with_server",
    "WIRE_VERSION",
    "MIN_WIRE_VERSION",
    "WireError",
    "ConnectionClosed",
]
