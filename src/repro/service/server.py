"""TCP front end for :class:`~repro.service.scheduler.SearchService`.

``repro serve`` binds a :class:`SearchServer`; clients (``repro submit`` or
:func:`submit_remote`) send one frame per request over the shared wire
protocol and read one frame back:

- ``("submit", request, targets, batch, timeout)`` ->
  ``("result", report)`` on success, ``("overloaded", msg)`` when the
  service's admission bound rejects the request (clients should back off
  and retry), ``("timeout", msg)`` when the per-request deadline elapsed,
  or ``("error", msg)`` for anything else;
- ``("stats",)`` -> ``("stats", snapshot_dict)``;
- ``("ping",)`` -> ``("pong", {})``;
- ``("register", "host:port"[, meta])`` ->
  ``("registered", {"workers": [...]})`` — a ``repro-worker`` announcing
  itself for shard dispatch; the optional meta dict (compatible growth)
  advertises the worker's kernel backends so routing never sends e.g. a
  ``numba`` shard to a numpy-only worker (servers started without a
  :class:`~repro.service.registry.WorkerRegistry` answer
  ``("error", ...)``);
- ``("deregister", "host:port")`` -> ``("deregistered", {...})`` — a
  draining worker withdrawing itself (wire v4), so routing stops
  immediately instead of waiting out a health-check eviction;
- ``("gossip", sender, table)`` / ``("cache-peek", key, wait_s)`` /
  ``("cluster-status",)`` — the cluster messages (wire v3), routed to the
  attached :class:`~repro.cluster.ClusterCoordinator`; servers started
  without one answer ``("error", ...)``.

Replies are sent **at the version each request arrived in** (see the
negotiation rule in :mod:`repro.service.wire`), so a v2 client keeps
working against a v3 server.

Registered workers are **health-checked**: a background loop pings each one
(the worker protocol's existing ``("ping",)`` message) every
``health_interval`` seconds and evicts addresses that stop answering, so
the :class:`~repro.service.executor.RegistryExecutor` only ever dispatches
to a recently-live fleet — no static ``--remote-worker`` wiring required.

Connections are persistent: a client may pipeline many submits over one
socket; each is admitted, cached, and bounded independently by the service.
"""

from __future__ import annotations

import asyncio
import logging
import socket
import time

from repro.service.scheduler import SearchService, ServiceOverloaded
from repro.service.wire import (
    MIN_WIRE_VERSION,
    ConnectionClosed,
    WireError,
    recv_frame,
    recv_frame_async,
    recv_frame_async_ex,
    send_frame,
    send_frame_async,
)

__all__ = ["SearchServer", "submit_remote", "server_stats", "cluster_status",
           "fetch_trace"]

log = logging.getLogger("repro.service.server")

DEFAULT_PORT = 7736


class SearchServer:
    """Asyncio TCP server delegating every request to a *service*.

    Args:
        service: the admission/caching scheduler every submit goes through.
        host / port: bind address (port 0 picks a free one).
        registry: optional :class:`~repro.service.registry.WorkerRegistry`;
            when given, ``register`` frames are accepted and the health
            loop keeps the membership live.
        health_interval: seconds between health-check sweeps.
        health_timeout: per-worker ping deadline within a sweep.
        cluster: optional :class:`~repro.cluster.ClusterCoordinator`; when
            given, the server joins its gossip membership at start and
            routes the cluster messages (``gossip`` / ``cache-peek`` /
            ``cluster-status``) to it.
    """

    def __init__(self, service: SearchService, host: str = "127.0.0.1",
                 port: int = 0, *, registry=None,
                 health_interval: float = 10.0, health_timeout: float = 3.0,
                 cluster=None):
        self.service = service
        self.host = host
        self.port = port
        self.registry = registry
        self.health_interval = health_interval
        self.health_timeout = health_timeout
        self.cluster = cluster
        self._server: asyncio.AbstractServer | None = None
        self._health_task: asyncio.Task | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> "SearchServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        if self.registry is not None:
            self._health_task = asyncio.create_task(self._health_loop())
        if self.cluster is not None:
            # Bind the advertised address now that the port is known (an
            # address set earlier — --cluster-advertise — wins) and start
            # the gossip loop.
            from repro.service.address import format_address

            host, port = self.address
            self.cluster.attach(format_address(host, port),
                                registry=self.registry,
                                service=self.service)
            await self.cluster.start()
        log.info("repro serve listening on %s:%d", *self.address)
        return self

    async def drain(self, *, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop admitting, let in-flight requests finish
        (bounded by *timeout*), then :meth:`stop`.

        New submits get the ``("overloaded", ...)`` backpressure reply
        while the drain runs, so load balancers and retrying clients move
        to another replica instead of erroring.
        """
        self.service.drain()
        cutoff = time.monotonic() + timeout
        while time.monotonic() < cutoff and self.service.stats.in_flight > 0:
            await asyncio.sleep(0.05)
        await self.stop()

    async def stop(self) -> None:
        if self.cluster is not None:
            await self.cluster.stop()
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -------------------------------------------------------- worker health
    async def _ping_worker(self, address: str) -> bool:
        """One liveness probe: connect, send the worker ``ping``, await
        ``pong`` — all inside :attr:`health_timeout`."""
        from repro.service.address import parse_address

        try:
            host, port = parse_address(address)
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port),
                timeout=self.health_timeout,
            )
        except (OSError, ValueError, asyncio.TimeoutError):
            return False
        try:
            await asyncio.wait_for(
                send_frame_async(writer, ("ping",)), timeout=self.health_timeout
            )
            reply = await asyncio.wait_for(
                recv_frame_async(reader), timeout=self.health_timeout
            )
            return isinstance(reply, tuple) and bool(reply) and reply[0] == "pong"
        except (OSError, WireError, asyncio.TimeoutError):
            return False
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    async def check_workers_once(self) -> None:
        """One health sweep: ping every registered worker, evict the dead.

        Probes run concurrently — a rack of dead workers costs one
        ping-timeout per sweep, not one per worker — so the sweep cadence
        stays near :attr:`health_interval` however large the fleet.
        Public so tests (and operators embedding the server) can force a
        sweep instead of waiting out the interval.
        """
        if self.registry is None:
            return
        # Sweep start time: a worker that re-registers while the (slow)
        # pings run must not be evicted on the stale probe result — the
        # probe answered for its dead predecessor, not the fresh process.
        cutoff = time.monotonic()
        addresses = self.registry.snapshot()
        alive = await asyncio.gather(
            *(self._ping_worker(a) for a in addresses)
        )
        for address, ok in zip(addresses, alive):
            if ok:
                self.registry.mark_alive(address)
            elif self.registry.remove_if_stale(address, cutoff):
                log.warning("worker %s failed its health check; evicted", address)
            else:
                log.info("worker %s failed its health check but re-announced "
                         "mid-sweep; kept", address)

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            await self.check_workers_once()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # ------------------------------------------------------------- handling
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    message, version = await recv_frame_async_ex(reader)
                except ConnectionClosed:
                    return
                except WireError as exc:
                    # The offending frame's version is unknown here, so
                    # reply at MIN_WIRE_VERSION — the one version every
                    # supported peer (v2 exact-match or v3 range) decodes.
                    await send_frame_async(writer, ("error", str(exc)),
                                           version=MIN_WIRE_VERSION)
                    return
                # Negotiation: answer at the version the request arrived
                # in, so a v2 dialer keeps decoding a v3 server's replies.
                await send_frame_async(
                    writer, await self._dispatch(message), version=version
                )
        except (OSError, ConnectionResetError):
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    async def _dispatch(self, message) -> tuple:
        if not isinstance(message, tuple) or not message:
            return ("error", f"malformed message: {message!r}")
        kind = message[0]
        if kind == "ping":
            return ("pong", {})
        if kind == "stats":
            from repro.util.jsonsafe import json_safe

            stats = self.service.stats_snapshot()
            if self.registry is not None:
                stats["worker_registry"] = self.registry.stats()
            if self.cluster is not None:
                stats["cluster"] = self.cluster.status()
            # JSON-safe end to end: the snapshot feeds `repro stats --json`
            # and the gateway bridge, so no numpy scalars or tuple keys may
            # survive past this point (pinned by the gateway test suite).
            return ("stats", json_safe(stats))
        if kind in ("gossip", "cache-peek", "cluster-status"):
            if self.cluster is None:
                return ("error", "this server is not part of a cluster "
                                 "(start it with repro serve --join)")
            return await self.cluster.dispatch(message)
        if kind in ("register", "deregister"):
            from repro.service.address import parse_address

            if self.registry is None:
                return ("error", "this server does not accept worker "
                                 "registration (no registry configured)")
            # register grew a third (meta) element so workers can advertise
            # their kernel backends — compatible growth, same rule as the
            # shard frames: an absent meta (an old worker) means the numpy
            # baseline every build carries.
            meta = {}
            if (kind == "register" and len(message) == 3
                    and isinstance(message[2], dict)):
                meta = message[2]
                message = message[:2]
            try:
                _, address = message
                parse_address(str(address))
            except (TypeError, ValueError):
                return ("error",
                        f"{kind} message must be ({kind}, 'host:port'"
                        + (", meta" if kind == "register" else "") + ")")
            if kind == "deregister":
                removed = self.registry.remove(str(address))
                log.info("worker %s deregistered%s", address,
                         "" if removed else " (was not registered)")
                return ("deregistered", {"workers": self.registry.snapshot(),
                                         "removed": removed})
            backends = meta.get("backends")
            if backends is not None and not (
                isinstance(backends, (list, tuple))
                and all(isinstance(b, str) for b in backends)
            ):
                return ("error", "register meta 'backends' must be a "
                                 "list of backend names")
            fresh = self.registry.add(
                str(address), backends=backends,
                calibrated=meta.get("calibrated"),
            )
            log.info("worker %s %s (backends: %s)", address,
                     "registered" if fresh else "re-registered",
                     ",".join(backends) if backends else "numpy")
            return ("registered", {"workers": self.registry.snapshot()})
        if kind == "trace":
            # ("trace", trace_id) -> the stitched span tree of a recent
            # request (wire-path counterpart of GET /v1/trace/{id}).  A new
            # message type is compatible growth: old servers answer the
            # standard unknown-type error, which `repro trace` surfaces.
            collector = getattr(self.service, "trace_collector", None)
            if len(message) != 2 or not isinstance(message[1], str):
                return ("error", "trace message must be (trace, trace_id)")
            spans = collector.get(message[1]) if collector is not None else None
            if spans is None:
                return ("error",
                        f"no trace {message[1]!r} (unknown, untraced, or "
                        f"evicted)")
            return ("trace", {"trace_id": message[1],
                              "spans": [s.to_dict() for s in spans]})
        if kind == "submit":
            # 5-tuple is the historical form; v4 dialers may append a meta
            # dict (currently {"trace_id": ...}) — compatible growth, same
            # rule as the shard frames.
            meta = {}
            if len(message) == 6 and isinstance(message[5], dict):
                meta = message[5]
                message = message[:5]
            try:
                _, request, targets, batch, timeout = message
            except ValueError:
                return ("error",
                        "submit message must be (submit, request, targets, "
                        "batch, timeout[, meta])")
            from repro.gateway.tracing import sanitize_trace_id, trace_scope
            from repro.observability.spans import (
                SpanRecorder, recording_scope, span,
            )

            trace_id = meta.get("trace_id")
            recorder = None
            if trace_id is not None:
                trace_id = sanitize_trace_id(trace_id)
                recorder = SpanRecorder(trace_id)
            try:
                with trace_scope(trace_id), recording_scope(recorder):
                    with span("server.submit"):
                        report = await self.service.submit(
                            request, targets=targets, batch=batch,
                            timeout=timeout,
                        )
            except ServiceOverloaded as exc:
                return ("overloaded", str(exc))
            except (asyncio.TimeoutError, TimeoutError):
                return ("timeout", "request deadline elapsed")
            except Exception as exc:
                log.exception("request failed")
                return ("error", f"{type(exc).__name__}: {exc}")
            finally:
                if recorder is not None:
                    collector = getattr(self.service, "trace_collector", None)
                    if collector is not None:
                        collector.record(trace_id, recorder.drain())
            return ("result", report)
        return ("error", f"unknown message type {kind!r}")


# ----------------------------------------------------------------- clients

def _roundtrip(address, message, *, connect_timeout: float, reply_timeout: float):
    host, port = address
    with socket.create_connection((host, port), timeout=connect_timeout) as sock:
        sock.settimeout(reply_timeout)
        send_frame(sock, message)
        return recv_frame(sock)


def submit_remote(
    address: tuple[str, int],
    request,
    *,
    targets=None,
    batch: bool = False,
    timeout: float | None = None,
    connect_timeout: float = 5.0,
    reply_timeout: float = 300.0,
    trace_id: str | None = None,
):
    """Submit one request to a running ``repro serve`` and return the report.

    With *trace_id* set, the submit frame grows a sixth (meta) element so
    the server records a span tree under that ID — fetch it afterwards
    with :func:`fetch_trace` or ``repro trace``.

    Raises:
        ServiceOverloaded: the server rejected the request (backpressure).
        TimeoutError: the server reported a request deadline overrun.
        RuntimeError: any other server-side failure.
    """
    message = ("submit", request, targets, batch, timeout)
    if trace_id is not None:
        message = message + ({"trace_id": trace_id},)
    reply = _roundtrip(
        address,
        message,
        connect_timeout=connect_timeout,
        reply_timeout=reply_timeout,
    )
    kind = reply[0] if isinstance(reply, tuple) and reply else "error"
    if kind == "result":
        return reply[1]
    if kind == "overloaded":
        raise ServiceOverloaded(reply[1])
    if kind == "timeout":
        raise TimeoutError(reply[1])
    raise RuntimeError(f"server error: {reply[1] if len(reply) > 1 else reply!r}")


def fetch_trace(address: tuple[str, int], trace_id: str, *,
                connect_timeout: float = 5.0) -> dict:
    """Fetch the stitched span tree of a recent request from ``repro serve``.

    Returns ``{"trace_id": ..., "spans": [span dicts]}``; raises
    ``RuntimeError`` when the server has no such trace (or predates the
    trace message).
    """
    reply = _roundtrip(
        address, ("trace", str(trace_id)),
        connect_timeout=connect_timeout, reply_timeout=30.0,
    )
    if not (isinstance(reply, tuple) and reply and reply[0] == "trace"):
        detail = reply[1] if isinstance(reply, tuple) and len(reply) > 1 else reply
        raise RuntimeError(f"trace unavailable: {detail!r}")
    return reply[1]


def server_stats(address: tuple[str, int], *, connect_timeout: float = 5.0) -> dict:
    """Fetch a running server's :meth:`SearchService.stats_snapshot`."""
    reply = _roundtrip(
        address, ("stats",), connect_timeout=connect_timeout, reply_timeout=30.0
    )
    if not (isinstance(reply, tuple) and reply and reply[0] == "stats"):
        raise RuntimeError(f"unexpected stats reply: {reply!r}")
    return reply[1]


def cluster_status(address: tuple[str, int], *, connect_timeout: float = 5.0) -> dict:
    """Fetch a clustered replica's membership/peering status.

    Raises ``RuntimeError`` when the server is not running in cluster mode
    (started without ``--join``).
    """
    reply = _roundtrip(
        address, ("cluster-status",),
        connect_timeout=connect_timeout, reply_timeout=30.0,
    )
    if not (isinstance(reply, tuple) and reply and reply[0] == "cluster-status"):
        detail = reply[1] if isinstance(reply, tuple) and len(reply) > 1 else reply
        raise RuntimeError(f"cluster status unavailable: {detail!r}")
    return reply[1]
