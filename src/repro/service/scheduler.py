"""The async serving core: a bounded, cached front door to the engine.

:class:`SearchService` accepts :class:`~repro.engine.request.SearchRequest`
jobs from many concurrent clients and runs them on a
:class:`~repro.engine.SearchEngine` with explicit resource bounds:

- **bounded job queue / backpressure** — at most ``max_pending`` requests
  may be admitted (queued + running) at once; request ``max_pending + 1``
  is rejected *immediately* with :class:`ServiceOverloaded` instead of
  growing an unbounded queue.  Overload is a fast, explicit signal clients
  can retry on, not a latency cliff.
- **bounded concurrency** — at most ``max_workers`` searches execute
  simultaneously (on a thread pool; numpy kernels release the GIL, and the
  engine's own shard policy / executor governs per-search parallelism).
- **per-request timeouts** — a search that exceeds its deadline raises
  :class:`asyncio.TimeoutError` to its client immediately.  Python threads
  cannot be killed, so the abandoned computation keeps its *worker* slot
  until it actually finishes (the slot is reclaimed by a done-callback);
  admission capacity frees at once, and overload during a timeout storm
  surfaces as explicit :class:`ServiceOverloaded` rejections rather than
  a silently wedged pool.
- **TTL result cache** — completed reports are memoised by structural
  fingerprint (:func:`repro.service.cache.request_fingerprint`), so
  identical requests within the TTL cost one execution.  Cache size and TTL
  bound the memory the cache can hold.
- **single-flight coalescing** — concurrent identical requests share one
  execution: the first admits a job, the rest await its future (the
  thundering-herd pattern a cold cache cannot catch alone).

The service is transport-agnostic; :mod:`repro.service.server` exposes it
over TCP and :mod:`repro.service.cli` drives it from the command line.
"""

from __future__ import annotations

import asyncio
import functools
import heapq
import itertools
import logging
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from threading import Lock

from repro.observability.spans import capture_span_context, span, span_scope
from repro.resilience import Deadline, deadline_scope
from repro.util.jsonsafe import json_safe

__all__ = ["SearchService", "ServiceOverloaded", "ServiceStats"]

log = logging.getLogger("repro.service.scheduler")


class ServiceOverloaded(RuntimeError):
    """Backpressure: the bounded job queue is full — retry later."""


class _PrioritySlots:
    """Worker slots whose waiters are served by priority class, not FIFO.

    A drop-in replacement for the plain ``asyncio.Semaphore`` the service
    used for its worker slots: :meth:`acquire` takes a priority (lower =
    served first; ties FIFO by arrival), so when the pool is contended an
    interactive request entering the queue *after* a pile of batch requests
    still gets the next free slot.  Single event loop only; :meth:`release`
    may be scheduled from other threads via ``loop.call_soon_threadsafe``
    (the reaper path), which serialises it onto the loop.
    """

    def __init__(self, count: int):
        self._free = count
        self._waiters: list = []  # heap of (priority, seq, future)
        self._seq = itertools.count()

    async def acquire(self, priority: int = 0) -> None:
        if self._free > 0 and not self._waiters:
            self._free -= 1
            return
        loop = asyncio.get_running_loop()
        waiter = loop.create_future()
        heapq.heappush(self._waiters, (priority, next(self._seq), waiter))
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled():
                # The slot was granted in the same tick we were cancelled:
                # hand it to the next waiter instead of leaking it.
                self.release()
            raise

    def release(self) -> None:
        while self._waiters:
            _, _, waiter = heapq.heappop(self._waiters)
            if not waiter.done():
                waiter.set_result(None)
                return
        self._free += 1

    @property
    def waiting(self) -> int:
        return sum(1 for _, _, w in self._waiters if not w.done())


@dataclass
class ServiceStats:
    """Monotonic counters plus the instantaneous load of a service."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    timeouts: int = 0
    cache_hits: int = 0
    peer_hits: int = 0
    peer_misses: int = 0
    coalesced: int = 0
    in_flight: int = 0
    cache: dict = field(default_factory=dict)

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "peer_hits": self.peer_hits,
            "peer_misses": self.peer_misses,
            "coalesced": self.coalesced,
            "in_flight": self.in_flight,
            "cache": dict(self.cache),
        }


class SearchService:
    """Async facade over a :class:`~repro.engine.SearchEngine`.

    Args:
        engine: the engine jobs run on (default: a fresh ``SearchEngine()``,
            optionally constructed with a custom executor for distributed
            shard fan-out).
        max_pending: admission bound — queued plus running requests.
        max_workers: simultaneous engine executions.
        request_timeout: default per-request deadline in seconds.
        cache_size: TTL-cache entry bound (``0`` disables caching).
        cache_ttl: seconds a cached report stays servable.
        peering: optional :class:`~repro.cluster.peering.CachePeers` —
            when set, a local cache miss consults the cluster's sibling
            replicas (keyed by the same structural fingerprint) before
            computing; every peering failure mode falls back to local
            compute.
        trace_collector: optional
            :class:`~repro.observability.collector.TraceCollector` to
            receive each traced request's stitched span tree (default: a
            fresh bounded collector; the gateway's ``/v1/trace/{id}``
            and the wire ``trace`` message read it).

    Use as an async context manager (or call :meth:`close`) so the worker
    pool shuts down deterministically.
    """

    def __init__(
        self,
        engine=None,
        *,
        max_pending: int = 64,
        max_workers: int = 4,
        request_timeout: float = 60.0,
        cache_size: int = 256,
        cache_ttl: float = 300.0,
        peering=None,
        trace_collector=None,
    ):
        from repro.engine import SearchEngine
        from repro.observability.collector import TraceCollector
        from repro.service.cache import TTLCache

        if max_pending < 1:
            raise ValueError(f"max_pending={max_pending} must be >= 1")
        if max_workers < 1:
            raise ValueError(f"max_workers={max_workers} must be >= 1")
        if request_timeout <= 0:
            raise ValueError(f"request_timeout={request_timeout} must be positive")
        self.engine = engine if engine is not None else SearchEngine()
        self.max_pending = max_pending
        self.request_timeout = request_timeout
        self.cache = TTLCache(maxsize=cache_size, ttl=cache_ttl)
        self.peering = peering
        # Stitched span trees for recent requests (bounded ring); the
        # gateway's /v1/trace/{id} and the wire "trace" message read it.
        self.trace_collector = (
            trace_collector if trace_collector is not None else TraceCollector()
        )
        self.stats = ServiceStats()
        self._inflight_jobs: dict[str, asyncio.Future] = {}
        # Keys whose engine execution has actually *started* (not merely
        # probing peers).  Only these are exposed to cluster cache-peeks:
        # two replicas probing each other for the same fresh key must each
        # get a fast miss, not hold each other's probes.
        self._computing: set[str] = set()
        self._admission = Lock()
        self._slots = _PrioritySlots(max_workers)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._closed = False
        self._draining = False

    # ------------------------------------------------------------ lifecycle
    async def __aenter__(self) -> "SearchService":
        return self

    async def __aexit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool (and the peering client) down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True, cancel_futures=True)
            if self.peering is not None and hasattr(self.peering, "close"):
                self.peering.close()

    def drain(self) -> None:
        """Stop admitting new requests; in-flight ones finish normally.

        New submits are rejected with :class:`ServiceOverloaded` (the
        backpressure signal clients already retry on — against another
        replica, for a draining one).  Idempotent; :meth:`close` still
        performs the actual shutdown once the in-flight count reaches zero.
        """
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    # -------------------------------------------------------------- serving
    def _admit(self) -> None:
        with self._admission:
            if self._draining:
                self.stats.rejected += 1
                raise ServiceOverloaded(
                    "service is draining; retry against another replica"
                )
            if self.stats.in_flight >= self.max_pending:
                self.stats.rejected += 1
                raise ServiceOverloaded(
                    f"{self.stats.in_flight} requests already pending "
                    f"(bound {self.max_pending}); retry later"
                )
            self.stats.in_flight += 1
            self.stats.submitted += 1

    def _release(self) -> None:
        with self._admission:
            self.stats.in_flight -= 1

    async def submit(
        self,
        request,
        *,
        targets=None,
        batch: bool = False,
        database=None,
        timeout: float | None = None,
        priority: int = 1,
    ):
        """Admit, (maybe) serve from cache, execute, and cache one request.

        Args:
            request: the :class:`~repro.engine.request.SearchRequest`.
            targets: batch targets (``batch=True`` only); ``None`` = all.
            batch: dispatch to :meth:`~repro.engine.SearchEngine.search_batch`
                instead of :meth:`~repro.engine.SearchEngine.search`.
            database: explicit database for single searches (uncached —
                its query counter is part of the caller's experiment).
            timeout: per-request deadline override in seconds.
            priority: worker-slot class (lower = served first when the pool
                is contended; the gateway maps tenant classes here —
                0 interactive, 1 normal, 2 batch).

        Raises:
            ServiceOverloaded: the admission bound is full (backpressure).
            asyncio.TimeoutError: the deadline elapsed.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        from repro.gateway.tracing import current_trace_id
        from repro.service.cache import request_fingerprint

        trace_id = current_trace_id()

        self._admit()
        try:
            key = None
            if database is None:
                key = request_fingerprint(request, targets if batch else None)
                if not batch:
                    key = None if key is None else f"search:{key}"
                else:
                    key = None if key is None else f"batch:{key}"
            with span("cache.lookup") as lookup:
                cached = self.cache.get(key, _MISS)
                lookup.attrs["hit"] = cached is not _MISS
            if cached is not _MISS:
                self.stats.cache_hits += 1
                self.stats.completed += 1
                return cached

            # Single-flight: identical requests already executing are
            # awaited, not re-run (the waiter still occupies an admission
            # slot — it is a real pending client — but no worker slot).
            shared = self._inflight_jobs.get(key) if key is not None else None
            if shared is not None:
                self.stats.coalesced += 1
                with span("coalesce.wait"):
                    try:
                        result = await asyncio.wait_for(
                            asyncio.shield(shared),
                            self.request_timeout if timeout is None else timeout,
                        )
                    except asyncio.CancelledError:
                        if shared.cancelled():  # the primary died, not us
                            raise RuntimeError(
                                "coalesced request was cancelled with its primary"
                            ) from None
                        raise
                self.stats.completed += 1
                return result

            if batch:
                job = functools.partial(
                    self.engine.search_batch, request, targets=targets
                )
            else:
                job = functools.partial(self.engine.search, request, database)

            deadline = self.request_timeout if timeout is None else timeout
            loop = asyncio.get_running_loop()
            promise: asyncio.Future | None = None
            if key is not None:
                promise = loop.create_future()
                self._inflight_jobs[key] = promise
            try:
                # Cache peering: before spending a worker slot, ask the
                # cluster's sibling replicas for this fingerprint.  The
                # promise is already registered, so concurrent identical
                # locals coalesce onto this fetch too.  The probe is capped
                # at *half* the remaining deadline — peering is an
                # optimisation, never a correctness dependency, so a hung
                # peer must cost a bounded wait and a local compute with
                # real deadline left, not a failed request.  The time the
                # probe does spend is charged against the deadline (no
                # doubling); any failure degrades to local compute.
                if promise is not None and self.peering is not None:
                    started = loop.time()
                    share = deadline / 2
                    fetched = None
                    with span("cache.peer_probe") as probe:
                        try:
                            # The share is passed INTO the fetch (its budget)
                            # so the probe threads self-terminate with their
                            # waiter; the wait_for is only a backstop.
                            fetched = await asyncio.wait_for(
                                asyncio.to_thread(
                                    self.peering.fetch, key, share
                                ),
                                share + 1.0,
                            )
                        except (asyncio.TimeoutError, TimeoutError):
                            pass  # probe overran its share: a peer miss
                        except Exception:
                            log.exception(
                                "cache peering failed; computing locally"
                            )
                        probe.attrs["hit"] = fetched is not None
                    if fetched is not None:
                        self.stats.peer_hits += 1
                        promise.set_result(fetched)
                        self.cache.put(key, fetched)
                        self.stats.completed += 1
                        return fetched
                    self.stats.peer_misses += 1
                    deadline = max(0.001, deadline - (loop.time() - started))
                if key is not None:
                    self._computing.add(key)
                with span("queue.wait", priority=priority):
                    await self._slots.acquire(priority)
                slot_held = True
                try:
                    # Submit directly so we hold the *concurrent* future: on
                    # timeout the asyncio wrapper gets cancelled and reports
                    # done immediately, but only the concurrent future
                    # completes when the pool thread actually ends.
                    # The remaining budget becomes an ambient Deadline inside
                    # the pool thread: the engine reads it per shard batch
                    # (repro.resilience.current_deadline) and the executors
                    # ship it to workers, so a deadline overrun stops
                    # dispatching instead of computing shards nobody awaits.
                    job_future = self._pool.submit(
                        self._run_with_deadline, job, Deadline.after(deadline),
                        trace_id, capture_span_context(),
                    )
                    try:
                        result = await asyncio.wait_for(
                            asyncio.wrap_future(job_future, loop=loop), deadline
                        )
                    except (asyncio.TimeoutError, TimeoutError) as exc:
                        self.stats.timeouts += 1
                        self.stats.failed += 1
                        if promise is not None:
                            promise.set_exception(exc)
                            promise.exception()  # mark retrieved: waiters optional
                        # The pool thread cannot be killed: keep the worker
                        # slot until the orphaned job actually finishes, so
                        # a timeout storm cannot oversubscribe the pool.
                        slot_held = False
                        job_future.add_done_callback(
                            functools.partial(self._reap_abandoned, loop)
                        )
                        raise
                    except Exception as exc:
                        self.stats.failed += 1
                        if promise is not None:
                            promise.set_exception(exc)
                            promise.exception()
                        raise
                finally:
                    if slot_held:
                        self._slots.release()
                if promise is not None:
                    promise.set_result(result)
            finally:
                if key is not None:
                    self._inflight_jobs.pop(key, None)
                    self._computing.discard(key)
                if promise is not None and not promise.done():
                    promise.cancel()  # primary cancelled mid-run
            self.cache.put(key, result)
            self.stats.completed += 1
            return result
        finally:
            self._release()

    @staticmethod
    def _run_with_deadline(job, deadline, trace_id=None,
                           span_ctx=(None, None)):
        """Pool-thread entry: run *job* under an ambient request deadline.

        A :class:`~repro.resilience.DeadlineExceeded` raised by the engine
        is a ``TimeoutError`` subclass, so it flows into the existing
        timeout accounting (and the server's ``("timeout", ...)`` reply)
        without a separate failure path.

        Contextvars do not follow jobs across the pool boundary, so the
        request's trace ID and span context (captured in :meth:`submit`)
        are re-entered here — the executors read the ID when stamping
        shard frames, and ``engine.execute`` brackets the engine's whole
        pool-thread residence (planning, dispatch, merge nest under it).
        """
        from repro.gateway.tracing import trace_scope

        recorder, parent_id = span_ctx
        with trace_scope(trace_id), deadline_scope(deadline), \
                span_scope(recorder, parent_id):
            with span("engine.execute"):
                return job()

    def _reap_abandoned(self, loop, job_future) -> None:
        """Release the worker slot of a timed-out job once its thread ends.

        Runs as a ``concurrent.futures`` done-callback (in the pool thread,
        or in the cancelling thread if the job never started), so the
        semaphore release hops back onto the event loop.  Consumes the
        job's outcome so nothing logs "exception was never retrieved".
        """
        if not job_future.cancelled():
            job_future.exception()
        try:
            loop.call_soon_threadsafe(self._slots.release)
        except RuntimeError:
            pass  # loop already closed: the service is shutting down

    def inflight_future(self, key: str | None) -> asyncio.Future | None:
        """The in-flight future for *key*, if its *execution* started here.

        The cluster cache-peek handler awaits this (bounded) to extend
        single-flight coalescing across replicas: a peer probing a key this
        service is mid-computing gets the finished report instead of a
        miss.  Keys that are admitted but still probing *their own* peers
        return ``None`` — otherwise two replicas missing the same key at
        once would hold each other's probes and both stall for the full
        peer-wait before computing anyway.
        """
        if key is None or key not in self._computing:
            return None
        return self._inflight_jobs.get(key)

    def stats_snapshot(self) -> dict:
        """Counters plus current cache occupancy — always JSON-safe.

        The snapshot crosses process boundaries (TCP stats, the gateway's
        ``/stats`` and ``/metrics``, ``--json`` CLI output), so it is
        sanitised here at the source: no numpy scalars, no tuple keys, no
        non-finite floats (:func:`repro.util.jsonsafe.json_safe`).
        """
        self.stats.cache = self.cache.stats()
        snapshot = self.stats.snapshot()
        snapshot["slot_waiters"] = self._slots.waiting
        return json_safe(snapshot)


_MISS = object()
