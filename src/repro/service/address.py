"""One address grammar for every endpoint the stack dials or advertises.

Worker endpoints, server registrations, cluster seeds, and advertise
addresses were all parsed by the executor's private helper, which rejected
bracketed IPv6 and let portless strings produce confusing errors deep in
the dial path.  This module is the single shared parser:

- ``"host:port"`` — plain hostname or IPv4;
- ``"[v6addr]:port"`` — IPv6 literals **must** be bracketed (an unbracketed
  ``::1:9000`` is ambiguous and rejected with a pointed error);
- ``(host, port)`` tuples pass through (brackets stripped from the host).

Everything that accepts an address — ``RemoteExecutor``, worker
registration, ``repro serve --join/--cluster-advertise``, gossip seeds —
parses it here, so a typo fails at configuration time with one clear
message instead of surfacing as a mid-batch dial error.
"""

from __future__ import annotations

__all__ = ["parse_address", "format_address"]


def parse_address(address) -> tuple[str, int]:
    """``"host:port"``, ``"[v6]:port"``, or ``(host, port)`` -> ``(host, port)``.

    Raises:
        ValueError: portless strings, empty hosts, non-numeric or
            out-of-range ports, and unbracketed IPv6 literals.
    """
    if not isinstance(address, str):
        try:
            host, port = address
        except (TypeError, ValueError):
            raise ValueError(
                f"address {address!r} is not 'host:port' or a (host, port) pair"
            ) from None
        return _strip_brackets(str(host)), _check_port(port, address)
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"address {address!r} has no port; expected 'host:port' "
            f"(or '[v6addr]:port' for IPv6)"
        )
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
        if not host:
            raise ValueError(f"address {address!r} has an empty host")
    elif ":" in host:
        raise ValueError(
            f"address {address!r} is ambiguous: bracket IPv6 hosts as "
            f"'[{host}]:{port}'"
        )
    return host, _check_port(port, address)


def _strip_brackets(host: str) -> str:
    if host.startswith("[") and host.endswith("]"):
        return host[1:-1]
    return host


def _check_port(port, address) -> int:
    try:
        value = int(port)
    except (TypeError, ValueError):
        raise ValueError(
            f"address {address!r} has a non-numeric port {port!r}"
        ) from None
    if not 0 <= value <= 65535:
        raise ValueError(f"address {address!r} port {value} is out of range")
    return value


def format_address(host: str, port: int) -> str:
    """The dialable string form, bracketing IPv6 hosts."""
    if ":" in host:
        return f"[{host}]:{port}"
    return f"{host}:{port}"
