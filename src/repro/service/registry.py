"""Dynamic worker membership: registration, liveness, and lookup.

PR 3's :class:`~repro.service.executor.RemoteExecutor` takes a *static*
address list, which means every ``repro serve`` deployment had to be wired
with ``--remote-worker host:port`` flags and restarted to change the fleet.
The :class:`WorkerRegistry` removes that coupling:

- workers **announce themselves** — ``repro-worker --register server:port``
  sends one ``("register", "host:port")`` frame to the server, which adds
  the address here;
- the server **health-checks** the membership on a timer, reusing the
  protocol's existing ``("ping",)`` message (see
  :meth:`SearchServer._health_loop <repro.service.server.SearchServer>`),
  and drops workers that stop answering;
- batched searches dispatch through a
  :class:`~repro.service.executor.RegistryExecutor`, which snapshots the
  live membership *per run* — so a worker registered mid-traffic serves the
  very next batch, and an empty registry degrades to local execution
  instead of failing.

The registry is a plain thread-safe set: the asyncio server mutates it from
the event loop while executor threads snapshot it, and every operation is a
single lock-held dict access.
"""

from __future__ import annotations

import threading
import time

__all__ = ["WorkerRegistry"]


class WorkerRegistry:
    """Thread-safe live-worker membership keyed by ``"host:port"``.

    Attributes are intentionally minimal — the registry records *who is
    alive*, not load or capability; shard scheduling stays the executor's
    job.
    """

    def __init__(self, *, breakers=None):
        self._lock = threading.Lock()
        #: address -> registration metadata (monotonic stamps for stats).
        self._workers: dict[str, dict] = {}
        self.registrations = 0
        self.evictions = 0
        #: Optional shared :class:`~repro.resilience.BreakerRegistry` —
        #: the registry does not consult it (scheduling stays the
        #: executor's job); it is attached purely so the stats surface can
        #: report breaker state next to the membership it quarantines.
        self.breakers = breakers

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    def add(self, address: str) -> bool:
        """Register *address*; returns True when it is new (re-registration
        of a live worker just refreshes its stamp)."""
        address = str(address)
        now = time.monotonic()
        with self._lock:
            fresh = address not in self._workers
            self._workers[address] = {"registered_at": now, "last_seen": now}
            self.registrations += 1
            return fresh

    def remove(self, address: str) -> bool:
        """Evict *address* (a failed health check or explicit shutdown)."""
        with self._lock:
            if address in self._workers:
                del self._workers[address]
                self.evictions += 1
                return True
            return False

    def remove_if_stale(self, address: str, cutoff: float) -> bool:
        """Evict *address* only if it has not re-announced since *cutoff*.

        Health sweeps are slow relative to registrations: the sweep
        snapshots the membership, pings every worker (seconds), and only
        then evicts the failures.  A worker that re-registers *during* that
        window — typically one that just restarted, so the ping hit its dead
        predecessor — must not be evicted on the stale probe result.  The
        sweep therefore passes its start time as *cutoff* and the eviction
        is skipped whenever the registration stamp is newer.

        Returns True when the address was actually removed.
        """
        with self._lock:
            meta = self._workers.get(address)
            if meta is None:
                return False
            if meta["last_seen"] > cutoff or meta["registered_at"] > cutoff:
                return False  # re-announced mid-sweep: the probe was stale
            del self._workers[address]
            self.evictions += 1
            return True

    def mark_alive(self, address: str) -> None:
        """Refresh the liveness stamp after a successful ping."""
        now = time.monotonic()
        with self._lock:
            if address in self._workers:
                self._workers[address]["last_seen"] = now

    def snapshot(self) -> list[str]:
        """The live addresses, sorted for deterministic dispatch order."""
        with self._lock:
            return sorted(self._workers)

    def stats(self) -> dict:
        """``{workers, registrations, evictions[, breakers]}`` for the
        stats surface."""
        with self._lock:
            stats = {
                "workers": sorted(self._workers),
                "registrations": self.registrations,
                "evictions": self.evictions,
            }
        if self.breakers is not None:
            stats["breakers"] = self.breakers.snapshot()
        return stats
