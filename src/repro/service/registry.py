"""Dynamic worker membership: registration, liveness, and lookup.

PR 3's :class:`~repro.service.executor.RemoteExecutor` takes a *static*
address list, which means every ``repro serve`` deployment had to be wired
with ``--remote-worker host:port`` flags and restarted to change the fleet.
The :class:`WorkerRegistry` removes that coupling:

- workers **announce themselves** — ``repro-worker --register server:port``
  sends one ``("register", "host:port"[, meta])`` frame to the server,
  which adds the address here together with the kernel backends the worker
  advertised (absent meta — an old worker — means the numpy baseline
  every build carries);
- the server **health-checks** the membership on a timer, reusing the
  protocol's existing ``("ping",)`` message (see
  :meth:`SearchServer._health_loop <repro.service.server.SearchServer>`),
  and drops workers that stop answering;
- batched searches dispatch through a
  :class:`~repro.service.executor.RegistryExecutor`, which snapshots the
  live membership *per run* — so a worker registered mid-traffic serves the
  very next batch, and an empty registry degrades to local execution
  instead of failing.

The registry is a plain thread-safe set: the asyncio server mutates it from
the event loop while executor threads snapshot it, and every operation is a
single lock-held dict access.
"""

from __future__ import annotations

import threading
import time

__all__ = ["WorkerRegistry"]


class WorkerRegistry:
    """Thread-safe live-worker membership keyed by ``"host:port"``.

    Attributes are intentionally minimal — the registry records *who is
    alive* and which kernel backends each worker advertised at
    registration; shard scheduling stays the executor's job (it filters
    its per-run snapshot by the backend a shard requires).
    """

    def __init__(self, *, breakers=None):
        self._lock = threading.Lock()
        #: address -> registration metadata (monotonic stamps for stats).
        self._workers: dict[str, dict] = {}
        self.registrations = 0
        self.evictions = 0
        #: Optional shared :class:`~repro.resilience.BreakerRegistry` —
        #: the registry does not consult it (scheduling stays the
        #: executor's job); it is attached purely so the stats surface can
        #: report breaker state next to the membership it quarantines.
        self.breakers = breakers

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    def add(self, address: str, *, backends=None, calibrated=None) -> bool:
        """Register *address*; returns True when it is new (re-registration
        of a live worker just refreshes its stamp and capabilities).

        *backends* is the kernel-backend tuple the worker advertised in its
        registration meta; ``None`` (an old worker sending the legacy
        2-tuple frame) records the numpy baseline every build carries, so
        such workers only ever receive shards they can execute.
        *calibrated* is the worker's probed-fastest backend, surfaced in
        stats for operators — routing does not consult it.
        """
        address = str(address)
        if backends is None:
            backends = ("numpy",)
        backends = tuple(str(b) for b in backends)
        now = time.monotonic()
        with self._lock:
            fresh = address not in self._workers
            self._workers[address] = {
                "registered_at": now,
                "last_seen": now,
                "backends": backends,
                "calibrated": calibrated,
            }
            self.registrations += 1
            return fresh

    def remove(self, address: str) -> bool:
        """Evict *address* (a failed health check or explicit shutdown)."""
        with self._lock:
            if address in self._workers:
                del self._workers[address]
                self.evictions += 1
                return True
            return False

    def remove_if_stale(self, address: str, cutoff: float) -> bool:
        """Evict *address* only if it has not re-announced since *cutoff*.

        Health sweeps are slow relative to registrations: the sweep
        snapshots the membership, pings every worker (seconds), and only
        then evicts the failures.  A worker that re-registers *during* that
        window — typically one that just restarted, so the ping hit its dead
        predecessor — must not be evicted on the stale probe result.  The
        sweep therefore passes its start time as *cutoff* and the eviction
        is skipped whenever the registration stamp is newer.

        Returns True when the address was actually removed.
        """
        with self._lock:
            meta = self._workers.get(address)
            if meta is None:
                return False
            if meta["last_seen"] > cutoff or meta["registered_at"] > cutoff:
                return False  # re-announced mid-sweep: the probe was stale
            del self._workers[address]
            self.evictions += 1
            return True

    def mark_alive(self, address: str) -> None:
        """Refresh the liveness stamp after a successful ping."""
        now = time.monotonic()
        with self._lock:
            if address in self._workers:
                self._workers[address]["last_seen"] = now

    def snapshot(self, *, backend: str | None = None) -> list[str]:
        """The live addresses, sorted for deterministic dispatch order.

        With *backend* set, only workers that advertised that kernel
        backend are returned — the routing filter the executors use so a
        ``backend="numba"`` shard never lands on a numpy-only worker.
        """
        with self._lock:
            if backend is None:
                return sorted(self._workers)
            return sorted(
                address for address, meta in self._workers.items()
                if backend in meta.get("backends", ("numpy",))
            )

    def worker_backends(self) -> dict[str, tuple[str, ...]]:
        """``{address: advertised kernel backends}`` for the live fleet."""
        with self._lock:
            return {
                address: meta.get("backends", ("numpy",))
                for address, meta in sorted(self._workers.items())
            }

    def stats(self) -> dict:
        """``{workers, backends, registrations, evictions[, breakers]}``
        for the stats surface."""
        with self._lock:
            stats = {
                "workers": sorted(self._workers),
                "backends": {
                    address: list(meta.get("backends", ("numpy",)))
                    for address, meta in sorted(self._workers.items())
                },
                "calibrated": {
                    address: meta.get("calibrated")
                    for address, meta in sorted(self._workers.items())
                    if meta.get("calibrated")
                },
                "registrations": self.registrations,
                "evictions": self.evictions,
            }
        if self.breakers is not None:
            stats["breakers"] = self.breakers.snapshot()
        return stats
