"""Length-prefixed wire format shared by workers, servers, and clients.

One frame = a fixed 12-byte header followed by a pickled payload::

    +------+---------+-----------------+----------------+
    | RPRO | version | payload length  | pickle payload |
    | 4 B  | 2 B BE  | 4 B BE unsigned | length bytes   |
    +------+---------+-----------------+----------------+

Every frame carries the protocol version, so a mismatched peer is detected
on the *first* message rather than by a mid-stream unpickling crash.

**Versioning rule:** any change that an old peer cannot decode — new
message types are fine (unknown types get an ``("error", ...)`` reply),
but changed header layout, changed payload encoding, or changed semantics
of an existing message type are not — MUST bump :data:`WIRE_VERSION`.
Peers reject frames whose version differs from their own; there is no
cross-version negotiation (redeploy workers and servers together).

Payloads are pickles: compact, and numpy generators/arrays round-trip with
bit-exact state, which is what keeps remote shard execution bit-identical
to the in-process path.  Pickle also means frames can execute code on the
receiver — both ends of every connection must be trusted (see the package
docstring).

Version history
---------------
- **v1** — initial protocol: ``shard``/``ping`` (worker), ``submit`` /
  ``stats``/``ping`` (server).
- **v2** — shard task payloads and :class:`~repro.engine.SearchRequest`
  frames carry an :class:`~repro.kernels.ExecutionPolicy` field (amplitude
  dtype + row threads) that workers must honour; a v1 worker would unpack
  the shard task tuple wrong, so the version bumps even though the frame
  layout is unchanged.  Also adds the ``register`` message (workers
  announce themselves to a server; see :mod:`repro.service.server`) — new
  message types alone would not need a bump.
"""

from __future__ import annotations

import asyncio
import io
import pickle
import socket
import struct

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "WireError",
    "ConnectionClosed",
    "send_frame",
    "recv_frame",
    "send_frame_async",
    "recv_frame_async",
]

#: Protocol version — bump on any incompatible change (see module docstring).
WIRE_VERSION = 2

#: Frame magic: identifies the stream as the repro shard protocol.
MAGIC = b"RPRO"

#: Header: magic, version, payload byte length.
_HEADER = struct.Struct(">4sHI")

#: Upper bound on one frame's payload (1 GiB) — a corrupted or hostile
#: length field must not trigger a giant allocation.
MAX_FRAME_BYTES = 1 << 30


class WireError(RuntimeError):
    """Malformed frame: bad magic, version mismatch, or oversized payload."""


class ConnectionClosed(WireError):
    """The peer closed the stream (mid-frame or between frames)."""


def _encode(payload: object) -> bytes:
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame payload of {len(body)} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte bound")
    return _HEADER.pack(MAGIC, WIRE_VERSION, len(body)) + body


def _check_header(header: bytes) -> int:
    magic, version, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r} (not a repro peer?)")
    if version != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: peer speaks v{version}, this process "
            f"speaks v{WIRE_VERSION} (redeploy so both ends match)"
        )
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame announces {length} bytes, above the "
                        f"{MAX_FRAME_BYTES}-byte bound")
    return length


def _decode(body: bytes) -> object:
    return pickle.loads(body)


# ------------------------------------------------------------- blocking I/O

def send_frame(sock: socket.socket, payload: object) -> None:
    """Serialise *payload* and write one frame to a blocking socket."""
    sock.sendall(_encode(payload))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = io.BytesIO()
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection with {remaining} of {n} bytes unread"
            )
        buf.write(chunk)
        remaining -= len(chunk)
    return buf.getvalue()


def recv_frame(sock: socket.socket) -> object:
    """Read one frame from a blocking socket and return its payload.

    Raises:
        ConnectionClosed: the peer hung up (cleanly or mid-frame).
        WireError: bad magic, version mismatch, or oversized frame.
    """
    length = _check_header(_recv_exact(sock, _HEADER.size))
    return _decode(_recv_exact(sock, length))


# -------------------------------------------------------------- asyncio I/O

async def send_frame_async(writer: asyncio.StreamWriter, payload: object) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(_encode(payload))
    await writer.drain()


async def recv_frame_async(reader: asyncio.StreamReader) -> object:
    """Read one frame from an asyncio stream and return its payload."""
    try:
        header = await reader.readexactly(_HEADER.size)
        body = await reader.readexactly(_check_header(header))
    except asyncio.IncompleteReadError as exc:
        raise ConnectionClosed("peer closed the connection mid-frame") from exc
    return _decode(body)
