"""Length-prefixed wire format shared by workers, servers, and clients.

One frame = a fixed 12-byte header followed by a pickled payload::

    +------+---------+-----------------+----------------+
    | RPRO | version | payload length  | pickle payload |
    | 4 B  | 2 B BE  | 4 B BE unsigned | length bytes   |
    +------+---------+-----------------+----------------+

Every frame carries the protocol version, so a mismatched peer is detected
on the *first* message rather than by a mid-stream unpickling crash.

**Versioning rule:** any change that an old peer cannot decode — new
message types are fine (unknown types get an ``("error", ...)`` reply),
but changed header layout, changed payload encoding, or changed semantics
of an existing message type are not — MUST bump :data:`WIRE_VERSION`.

**Negotiation rule (since v3):** a receiver accepts any frame whose version
lies in ``[MIN_WIRE_VERSION, WIRE_VERSION]``, and an *acceptor* (server,
worker, cluster peer) answers each request **at the version the request
arrived in** (:func:`recv_frame_ex` exposes it; :func:`send_frame` takes
``version=``), so an old dialer keeps decoding the replies.  A dialer sends
at its own :data:`WIRE_VERSION` by default, which an older acceptor rejects
— hence the cluster upgrade order: **acceptors first, dialers second**
(upgrade servers/workers before the clients and drivers that dial them).
A new dialer that must talk to a legacy fleet mid-upgrade can pin
``version=2`` explicitly for the legacy message types.

Payloads are pickles: compact, and numpy generators/arrays round-trip with
bit-exact state, which is what keeps remote shard execution bit-identical
to the in-process path.  Pickle also means frames can execute code on the
receiver — both ends of every connection must be trusted (see the package
docstring).

Version history
---------------
- **v1** — initial protocol: ``shard``/``ping`` (worker), ``submit`` /
  ``stats``/``ping`` (server).
- **v2** — shard task payloads and :class:`~repro.engine.SearchRequest`
  frames carry an :class:`~repro.kernels.ExecutionPolicy` field (amplitude
  dtype + row threads) that workers must honour; a v1 worker would unpack
  the shard task tuple wrong, so the version bumps even though the frame
  layout is unchanged.  Also adds the ``register`` message (workers
  announce themselves to a server; see :mod:`repro.service.server`).
- **v3** — cross-version negotiation: receivers accept the whole
  ``[MIN_WIRE_VERSION, WIRE_VERSION]`` range instead of exact equality,
  and acceptors echo the requester's version in replies.  That semantic
  change to frame acceptance is itself the bump.  v3 peers additionally
  speak the cluster messages (``gossip``/``cache-peek``/``cluster-status``,
  see :mod:`repro.cluster`), which v2 servers answer with ``("error", ...)``
  as the rule above allows.  v1 peers remain rejected:
  :data:`MIN_WIRE_VERSION` is 2.
- **v4** — deadline propagation: the worker ``shard`` message grows a
  fifth element, a metadata dict carrying the request's **remaining
  budget** in seconds (``{"deadline_s": float}``; monotonic clocks do not
  transfer between hosts, so the absolute deadline never crosses the
  wire).  Workers rebuild a local :class:`~repro.resilience.Deadline`
  from it and answer ``("expired", msg)`` for shards that arrive already
  dead.  A v2/v3 worker would unpack the 5-tuple wrong, hence the bump;
  v4 workers still accept the 4-tuple form from older dialers.  Adds the
  ``deregister`` message (a draining worker withdrawing its
  registration) and the ``unavailable`` reply (a draining worker
  refusing new shards — the dialer requeues elsewhere, like a transport
  failure, instead of aborting the batch).

  The meta dict is the frame's designated growth point: adding keys is a
  **compatible** change that needs no version bump, because receivers
  read only the keys they know and ignore the rest.  Keys so far:
  ``deadline_s`` (above), ``trace_id`` (an opaque request-tracing string
  from :mod:`repro.gateway.tracing`; workers scope and log shard
  execution with it), and ``parent_span_id`` (the dialer's dispatch-
  attempt span ID — traced workers parent their ``worker.compute`` span
  on it, see :mod:`repro.observability`).  Only a change that breaks how
  an *existing* key or the tuple layout is interpreted bumps the version.

  Compatible growth rides the *reply* direction too: a traced shard is
  answered ``("result", value, {"spans": [...]})`` — worker-side span
  dicts for the dialer to stitch into the request's trace — while
  untraced shards keep the classic 2-tuple; old dialers read ``reply[1]``
  and ignore the extra element.  Likewise the server ``submit`` message
  may append a sixth (meta) element (``{"trace_id": ...}``), and the
  ``trace`` message type (``("trace", trace_id)`` -> the stitched span
  tree) is new-type growth old servers answer with the standard unknown-
  type error.  **Span dicts themselves follow the same rule: add keys,
  never rename or remove** — mixed-version fleets stitch each other's
  spans.

  **v3 -> v4 upgrade rule:** the negotiation rule above still governs —
  upgrade **acceptors first** (workers/servers, which keep answering v2–v3
  dialers in kind), **dialers second**.  A v4 dialer that reaches a
  not-yet-upgraded v3 acceptor gets the standard version-mismatch
  ``("error", ...)`` reply; the shard executor recognises it, pins that
  lane to the peer's advertised maximum, and resends the legacy 4-tuple
  — deadline enforcement for that lane degrades to the dialer-side
  timeout, nothing else changes.
"""

from __future__ import annotations

import asyncio
import io
import pickle
import socket
import struct

__all__ = [
    "WIRE_VERSION",
    "MIN_WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "WireError",
    "ConnectionClosed",
    "send_frame",
    "recv_frame",
    "recv_frame_ex",
    "send_frame_async",
    "recv_frame_async",
    "recv_frame_async_ex",
]

#: Protocol version — bump on any incompatible change (see module docstring).
WIRE_VERSION = 4

#: Oldest peer version this build still decodes (and will answer in kind).
#: v1 frames predate the ExecutionPolicy shard payload and are rejected.
MIN_WIRE_VERSION = 2

#: Frame magic: identifies the stream as the repro shard protocol.
MAGIC = b"RPRO"

#: Header: magic, version, payload byte length.
_HEADER = struct.Struct(">4sHI")

#: Upper bound on one frame's payload (1 GiB) — a corrupted or hostile
#: length field must not trigger a giant allocation.
MAX_FRAME_BYTES = 1 << 30


class WireError(RuntimeError):
    """Malformed frame: bad magic, version mismatch, or oversized payload."""


class ConnectionClosed(WireError):
    """The peer closed the stream (mid-frame or between frames)."""


def _check_version(version: int | None) -> int:
    if version is None:
        return WIRE_VERSION
    if not MIN_WIRE_VERSION <= version <= WIRE_VERSION:
        raise ValueError(
            f"cannot speak wire version {version}: this build supports "
            f"v{MIN_WIRE_VERSION}..v{WIRE_VERSION}"
        )
    return version


def _encode(payload: object, version: int | None = None) -> bytes:
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame payload of {len(body)} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte bound")
    return _HEADER.pack(MAGIC, _check_version(version), len(body)) + body


def _check_header(header: bytes) -> tuple[int, int]:
    magic, version, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r} (not a repro peer?)")
    if not MIN_WIRE_VERSION <= version <= WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: peer speaks v{version}, this process "
            f"speaks v{MIN_WIRE_VERSION}..v{WIRE_VERSION} (upgrade the "
            f"older end; acceptors before dialers)"
        )
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame announces {length} bytes, above the "
                        f"{MAX_FRAME_BYTES}-byte bound")
    return version, length


def _decode(body: bytes) -> object:
    try:
        return pickle.loads(body)
    except Exception as exc:
        # A frame whose header decoded but whose payload does not unpickle
        # (corruption in transit, chaos injection, deep version skew) is a
        # *transport* failure: surface it as WireError so dialers requeue
        # the shard instead of treating it as a deterministic shard error.
        raise WireError(
            f"undecodable frame payload ({type(exc).__name__}: {exc})"
        ) from exc


# ------------------------------------------------------------- blocking I/O

def send_frame(sock: socket.socket, payload: object,
               *, version: int | None = None) -> None:
    """Serialise *payload* and write one frame to a blocking socket.

    ``version`` pins the frame's announced wire version (``None`` = this
    build's :data:`WIRE_VERSION`); acceptors pass the version the request
    arrived in so old dialers can decode the reply.
    """
    sock.sendall(_encode(payload, version))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = io.BytesIO()
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection with {remaining} of {n} bytes unread"
            )
        buf.write(chunk)
        remaining -= len(chunk)
    return buf.getvalue()


def recv_frame_ex(sock: socket.socket) -> tuple[object, int]:
    """Read one frame from a blocking socket: ``(payload, frame_version)``.

    The version is what the *peer* announced (within the supported range) —
    acceptors reply at this version so both ends of a mixed-version pair
    keep decoding each other.

    Raises:
        ConnectionClosed: the peer hung up (cleanly or mid-frame).
        WireError: bad magic, unsupported version, or oversized frame.
    """
    version, length = _check_header(_recv_exact(sock, _HEADER.size))
    return _decode(_recv_exact(sock, length)), version


def recv_frame(sock: socket.socket) -> object:
    """Read one frame from a blocking socket and return its payload."""
    return recv_frame_ex(sock)[0]


# -------------------------------------------------------------- asyncio I/O

async def send_frame_async(writer: asyncio.StreamWriter, payload: object,
                           *, version: int | None = None) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(_encode(payload, version))
    await writer.drain()


async def recv_frame_async_ex(reader: asyncio.StreamReader) -> tuple[object, int]:
    """Read one frame from an asyncio stream: ``(payload, frame_version)``."""
    try:
        header = await reader.readexactly(_HEADER.size)
        version, length = _check_header(header)
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionClosed("peer closed the connection mid-frame") from exc
    return _decode(body), version


async def recv_frame_async(reader: asyncio.StreamReader) -> object:
    """Read one frame from an asyncio stream and return its payload."""
    return (await recv_frame_async_ex(reader))[0]
