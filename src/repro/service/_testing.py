"""Picklable shard functions for executor/worker fault-path tests.

The wire protocol ships shard functions by reference (module + qualname),
so test doubles must live in an importable module — test files collected by
pytest's importlib mode are not.  These helpers are tiny, deterministic,
and used only by the test suite and docs examples.
"""

from __future__ import annotations

import time

__all__ = ["echo_shard", "double_shard", "raise_shard", "slow_shard"]


def echo_shard(task, rng):
    """Return the task unchanged (transport round-trip checks)."""
    return task


def double_shard(task, rng):
    """Return ``task * 2`` (order/requeue checks with distinct results)."""
    return task * 2


def raise_shard(task, rng):
    """Always raise — a deterministic shard failure (must not be retried)."""
    raise ValueError(f"injected shard failure for task {task!r}")


def slow_shard(task, rng):
    """Sleep ``task`` seconds, then return it (timeout checks)."""
    time.sleep(float(task))
    return task
