"""Picklable shard functions for executor/worker fault-path tests.

The wire protocol ships shard functions by reference (module + qualname),
so test doubles must live in an importable module — test files collected by
pytest's importlib mode are not.  These helpers are tiny, deterministic,
and used only by the test suite and docs examples.

Worker-side *fault* doubles used to live here too; those are now expressed
as :class:`repro.resilience.FaultPlan` specs handed to the worker (``chaos=``
or ``--chaos-plan``), which keeps fault injection deterministic and seeded
instead of baked into shard code.  The doubles below model shard *behaviour*
(payloads, deterministic failures, slowness), which the plan cannot.
"""

from __future__ import annotations

import time

__all__ = [
    "echo_shard",
    "double_shard",
    "raise_shard",
    "slow_shard",
    "deadline_probe_shard",
    "trace_probe_shard",
]


def echo_shard(task, rng):
    """Return the task unchanged (transport round-trip checks)."""
    return task


def double_shard(task, rng):
    """Return ``task * 2`` (order/requeue checks with distinct results)."""
    return task * 2


def raise_shard(task, rng):
    """Always raise — a deterministic shard failure (must not be retried)."""
    raise ValueError(f"injected shard failure for task {task!r}")


def slow_shard(task, rng):
    """Sleep ``task`` seconds, then return it (timeout checks)."""
    time.sleep(float(task))
    return task


def deadline_probe_shard(task, rng):
    """Return ``(task, had_deadline, remaining_s)`` — propagation checks.

    A worker executing a wire-v4 shard rebuilds the request deadline and
    scopes the compute with it, so this shard observes a finite, positive
    remaining budget; a legacy (v3) dispatch observes ``None``.
    """
    from repro.resilience import current_deadline

    deadline = current_deadline()
    if deadline is None:
        return (task, False, None)
    return (task, True, deadline.remaining())


def trace_probe_shard(task, rng):
    """Return ``(task, ambient_trace_id)`` — tracing propagation checks.

    A worker executing a wire-v4 shard whose meta carries ``trace_id``
    scopes the compute with it, so this shard observes the same ID the
    gateway minted; an untraced dispatch observes ``None``.
    """
    from repro.gateway.tracing import current_trace_id

    return (task, current_trace_id())
