"""Cache peering: serve a replica's cache miss from a sibling's cache.

PR 3 gave each ``repro serve`` replica a TTL cache keyed by the structural
request fingerprint and in-process single-flight coalescing.  With several
replicas behind a load balancer that is not enough: the same sweep computed
on replica A is recomputed from scratch on replica B.  Peering closes that
gap — on a local miss the :class:`~repro.service.scheduler.SearchService`
calls :meth:`CachePeers.fetch`, which asks each live cluster peer (from the
gossip membership) for the fingerprint before computing:

- ``("cache-peek", key, wait_s)`` -> ``("cache-found", payload, digest)``
  when the peer holds the entry, else ``("cache-none",)``;
- **cluster-wide single-flight**: a peer that is *currently computing* the
  same fingerprint holds the probe for up to ``wait_s`` seconds and answers
  with the finished report — so N replicas hit by the same thundering herd
  still cost one execution, not N (the in-process coalescing rule, extended
  over the wire);
- **bit-identity verification**: the payload travels as the peer's pickled
  bytes plus their SHA-256; the fetcher re-hashes what it received and
  rejects any mismatch before unpickling.  Reports are shard/executor
  invariant (pinned by the engine's tests), so a verified peer payload is
  byte-for-byte the report this replica would have computed.

Every failure path — dead peer, hung peer, digest mismatch, version skew —
falls back to the next peer and finally to local compute: peering is an
optimisation, never a correctness dependency.
"""

from __future__ import annotations

import hashlib
import pickle
import socket
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeoutError

from repro.resilience import FaultPlan
from repro.service.wire import WireError, recv_frame, send_frame

__all__ = [
    "PeerPayloadError",
    "encode_cached_report",
    "decode_cached_report",
    "CachePeers",
]


#: Sentinel distinguishing "probe never completed" from a ``None`` reply.
_FAILED = object()


class PeerPayloadError(RuntimeError):
    """A peer's cache payload failed its digest check (corruption/skew)."""


def encode_cached_report(report) -> tuple[bytes, str]:
    """Pickle *report* and compute the SHA-256 the fetcher will verify."""
    body = pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL)
    return body, hashlib.sha256(body).hexdigest()


def decode_cached_report(body: bytes, digest: str):
    """Verify *body* against *digest* and unpickle it.

    Raises:
        PeerPayloadError: the received bytes do not hash to the digest the
            peer computed — the payload was corrupted or tampered with in
            transit and must not be served.
    """
    actual = hashlib.sha256(bytes(body)).hexdigest()
    if actual != digest:
        raise PeerPayloadError(
            f"peer cache payload digest mismatch: announced {digest[:12]}…, "
            f"received bytes hash to {actual[:12]}…"
        )
    return pickle.loads(bytes(body))


class CachePeers:
    """Blocking cache-peer client resolving peers from the live membership.

    One instance is shared by a replica's :class:`SearchService`; its
    :meth:`fetch` runs on the service's thread pool (plain sockets, every
    step bounded by a timeout), so a slow peer delays one request, never
    the event loop.

    Args:
        membership: the :class:`~repro.cluster.membership.ClusterMembership`
            whose live peers are probed (concurrently; the first verified
            hit wins).
        connect_timeout: TCP connect budget per peer.
        reply_timeout: per-peer budget for the probe round trip *excluding*
            the in-flight wait.
        inflight_wait: how long a peer may hold the probe while it finishes
            computing the same fingerprint (the cluster-wide single-flight
            window).  ``0`` disables waiting — only finished entries hit.
        total_budget: hard ceiling on one ``fetch`` across all peers, so a
            rack of slow peers cannot stall a request longer than this.
            ``None`` (default) derives it from the other knobs —
            ``max(10, reply_timeout + inflight_wait)`` — so a long
            ``inflight_wait`` is never silently truncated by a default
            budget; pass an explicit value to cap fetches harder (an
            explicit cap wins over the wait).
        breakers: shared :class:`~repro.resilience.BreakerRegistry` —
            quarantined peers are skipped without dialing (a fast miss),
            and probe outcomes feed the same breakers the shard executor
            and gossip use.  ``None`` disables breaker participation.
        chaos: optional :class:`~repro.resilience.FaultPlan` consulted at
            the ``peer.probe`` site (``refuse`` / ``slow`` / ``drop``).
        clock: monotonic time source (injectable for tests).
    """

    def __init__(self, membership, *, connect_timeout: float = 1.0,
                 reply_timeout: float = 5.0, inflight_wait: float = 2.0,
                 total_budget: float | None = None, breakers=None,
                 chaos=None, clock=time.monotonic):
        self.membership = membership
        self.connect_timeout = connect_timeout
        self.reply_timeout = reply_timeout
        self.inflight_wait = inflight_wait
        if total_budget is None:
            total_budget = max(10.0, reply_timeout + inflight_wait)
        self.total_budget = total_budget
        self.breakers = breakers
        self.chaos = chaos
        self._clock = clock
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        self.hits = 0
        self.misses = 0
        self.mismatches = 0
        self.errors = 0

    def _count(self, field: str) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + 1)

    def _probe_one(self, address: str, key: str, budget: float):
        """One peer probe; returns the report or None.  Raises nothing.

        A quarantined peer (open breaker) is skipped without dialing.  One
        transient failure gets one immediate retry while the budget allows
        — a blip must not cost this request its only shot at a peer hit —
        and both failures are reported to the shared breaker.
        """
        from repro.service.address import parse_address

        breaker = self.breakers.get(address) if self.breakers is not None \
            else None
        if breaker is not None and not breaker.allow():
            self._count("errors")
            return None
        started = self._clock()
        reply = _FAILED
        for attempt in range(2):
            if self.chaos is not None:
                spec = FaultPlan.apply(self.chaos.visit("peer.probe"),
                                       what="peer probe")
                if spec is not None and spec.kind in ("refuse", "drop"):
                    if breaker is not None:
                        breaker.record_failure()
                    continue
            remaining = budget - (self._clock() - started)
            if remaining <= 0:
                break
            try:
                host, port = parse_address(address)
                with socket.create_connection(
                    (host, port), timeout=min(self.connect_timeout, remaining)
                ) as sock:
                    sock.settimeout(
                        min(self.reply_timeout + self.inflight_wait, remaining)
                    )
                    send_frame(sock, ("cache-peek", key, self.inflight_wait))
                    reply = recv_frame(sock)
                break
            except (OSError, WireError, ValueError):
                # Dead, hung, or incompatible peer: its gossip entry will
                # age out; this probe retries once, then moves on.  Each
                # failed attempt feeds the breaker; the stats count one
                # error per failed *probe*, whatever the attempt count.
                if breaker is not None:
                    breaker.record_failure()
        if reply is _FAILED:
            self._count("errors")
            return None
        if breaker is not None:
            breaker.record_success()
        if isinstance(reply, tuple) and reply and reply[0] == "cache-found":
            try:
                _, body, digest = reply
                report = decode_cached_report(body, digest)
            except Exception:
                # Digest mismatch, a malformed reply tuple, or an unpickle
                # failure from a version-skewed peer (AttributeError /
                # ModuleNotFoundError for a class this build lacks) — the
                # probe contract is "raises nothing", so all of it counts
                # as a mismatch and the fetch moves on.
                self._count("mismatches")
                return None
            self._count("hits")
            return report
        return None

    def fetch(self, key: str | None, budget: float | None = None):
        """The report for *key* from the first peer that has it, or ``None``.

        Live peers are probed **concurrently** (first hit wins) within the
        budget — a serial scan would charge every cache-missing request
        one connect/round-trip per peer before local compute could start.
        Slow losers are abandoned, not awaited: their sockets carry their
        own timeouts, so the threads retire on their own.  ``None``
        (uncacheable request) short-circuits.

        ``budget`` tightens ``total_budget`` for this call.  Callers that
        abandon the fetch at a deadline (the service charges the probe at
        most half the request deadline) pass their share here, so the
        probe threads self-terminate with their waiter instead of
        lingering for the full default budget.
        """
        if key is None or self._closed:
            return None
        total = self.total_budget if budget is None \
            else min(self.total_budget, budget)
        peers = self.membership.peers()
        if not peers:
            self._count("misses")
            return None
        if len(peers) == 1:
            report = self._probe_one(peers[0], key, total)
            if report is None:
                self._count("misses")
            return report
        pool = self._probes()
        if pool is None:  # closed (or closing) — a plain miss
            self._count("misses")
            return None
        try:
            futures = [
                pool.submit(self._probe_one, address, key, total)
                for address in peers
            ]
        except RuntimeError:  # close() shut the pool under us
            self._count("misses")
            return None
        try:
            for future in as_completed(futures, timeout=total):
                try:
                    report = future.result()
                except CancelledError:  # close() cancelled queued probes
                    continue
                if report is not None:
                    return report
        except FuturesTimeoutError:
            pass
        finally:
            for future in futures:
                future.cancel()  # free the slots of not-yet-started losers
        self._count("misses")
        return None

    def _probes(self) -> ThreadPoolExecutor | None:
        """The shared probe pool (lazy — never created for 0–1 peers).

        One bounded pool per :class:`CachePeers` instead of per fetch:
        the serving hot path must not pay thread creation per cache miss.
        Abandoned losers keep their worker until their socket timeout
        fires, so a burst against hung peers degrades to queued probes
        that expire through ``as_completed``'s budget — never to unbounded
        threads.  Returns ``None`` once :meth:`close` ran, so a fetch
        racing the shutdown cannot resurrect a pool nothing will close.
        """
        with self._lock:
            if self._closed:
                return None
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=8, thread_name_prefix="repro-cache-peer"
                )
            return self._pool

    def close(self) -> None:
        """Shut the probe pool down, permanently (idempotent; in-flight
        probes are abandoned to their socket timeouts and later fetches
        miss without touching the network)."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def stats(self) -> dict:
        """``{hits, misses, mismatches, errors}`` for the status surface."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "mismatches": self.mismatches,
                "errors": self.errors,
            }
