"""Cluster-wide shard scheduling over the gossiped worker fleet.

The :class:`~repro.service.executor.RegistryExecutor` dispatches to the
workers registered *at this replica*; a multi-server deployment would pin
each worker to whichever server it happened to register with.  The
:class:`ClusterExecutor` removes that coupling: membership gossip
(:mod:`repro.cluster.membership`) propagates every member's registered
workers (and its current load), so a worker that ran ``repro-worker
--register`` against *any* replica serves batches submitted to *all* of
them.

Scheduling is least-loaded-first: candidate workers are ranked by their
owning member's advertised load (this replica's own registry counts as load
0 — local knowledge is current, gossiped knowledge is a round stale), with
circuit-breaker state as a final tiebreak layer: half-open endpoints (just
out of quarantine, still earning trust) sink to the tail of the ranking,
and open ones are filtered out entirely by the inherited dispatch.  The
dispatch mechanics are inherited from :class:`RegistryExecutor` — lanes
capped at one per shard (trimmed from the tail, so they stay on the
best-ranked workers), per-run :class:`~repro.service.executor.RemoteExecutor`
with ``fallback_local=True`` — because gossip necessarily lags reality, so
a fleet that died since the last round degrades to local compute instead of
aborting the batch.
"""

from __future__ import annotations

from repro.observability.spans import span
from repro.service.executor import RegistryExecutor, required_kernel_backend

__all__ = ["ClusterExecutor"]


class ClusterExecutor(RegistryExecutor):
    """Dispatch shards across every worker known to the cluster.

    Args:
        membership: the gossip table advertising each member's workers/load.
        registry: this replica's own :class:`~repro.service.registry.WorkerRegistry`
            (consulted live — fresher than our own gossip entry); ``None``
            for a replica that takes no direct registrations.
        timeout: per-shard reply timeout handed to the remote dispatch.
        connect_timeout: TCP connect timeout per worker.
        retry: transient-failure policy for the per-run remote dispatch.
        breakers: shared :class:`~repro.resilience.BreakerRegistry` —
            open endpoints are quarantined out of dispatch and half-open
            ones rank behind every closed endpoint.
        chaos: optional :class:`~repro.resilience.FaultPlan` for the
            per-run remote dispatch.
    """

    def __init__(self, membership, registry=None, *, timeout: float = 300.0,
                 connect_timeout: float = 5.0, retry=None, breakers=None,
                 chaos=None):
        super().__init__(registry, timeout=timeout,
                         connect_timeout=connect_timeout, retry=retry,
                         breakers=breakers, chaos=chaos)
        self.membership = membership

    def _ranked_workers(self, backend: str | None = None) -> list[str]:
        """Cluster workers, least-loaded owner first, deduplicated.

        Local registrations rank ahead of gossiped ones: the local
        registry is read at call time while member entries are up to a
        gossip round stale.  The gossiped tail comes from
        :meth:`~repro.cluster.membership.ClusterMembership.cluster_workers`,
        whose insertion order *is* the (load, address) ranking — one
        implementation of the ordering, shared with the status surface.

        With *backend* set, only workers that advertised that kernel
        backend make the ranking (the local registry filters its own
        snapshot; gossiped workers are checked against the membership's
        ``worker_backends`` map, where absence means numpy-only) — so a
        ``numba`` batch on a mixed fleet routes past incapable workers
        up front.

        Breaker state is applied last: endpoints not currently ``closed``
        (half-open probation, or open-but-about-to-expire) sink to the
        tail in their original relative order, so lane trimming prefers
        workers with a clean recent record.
        """
        ranked: list[str] = []
        seen: set[str] = set()
        if self.registry is not None:
            for address in self.registry.snapshot(backend=backend):
                if address not in seen:
                    seen.add(address)
                    ranked.append(address)
        capabilities = (
            self.membership.worker_backends() if backend is not None else {}
        )
        for address, owner in self.membership.cluster_workers().items():
            if owner == self.membership.self_address:
                continue  # our own workers came from the live registry
            if backend is not None \
                    and backend not in capabilities.get(address, ("numpy",)):
                continue
            if address not in seen:
                seen.add(address)
                ranked.append(address)
        # Stable two-pass split, not a sort: load order within each class
        # is preserved.
        trusted = [a for a in ranked if self.breakers.state(a) == "closed"]
        probation = [a for a in ranked if self.breakers.state(a) != "closed"]
        return trusted + probation

    def _resolve_addresses(self, tasks: list) -> list[str]:
        # Ranking walks the gossip table; on a big fleet that is real work
        # worth attributing, so it gets its own span under dispatch.resolve.
        backend = required_kernel_backend(tasks)
        with span("cluster.rank") as ranking:
            ranked = self._ranked_workers(
                backend if backend != "numpy" else None
            )
            ranking.attrs["workers"] = len(ranked)
            if backend != "numpy":
                ranking.attrs["kernel_backend"] = backend
        return ranked

    def describe(self) -> dict:
        return {
            "executor": "cluster",
            "workers": self._ranked_workers(),
            "members": self.membership.peers(),
            "timeout_s": self.timeout,
        }
