"""Seed-list + gossip-style membership for federated ``repro serve`` replicas.

Every replica keeps a local table of :class:`MemberState` — who is in the
cluster, how alive they are, which workers they have registered, and how
loaded they are.  The table converges by **push–pull gossip** over the
existing length-prefixed wire (:mod:`repro.service.wire`, protocol v3): on a
timer each replica sends its full table to its known peers and seeds
(``("gossip", table)``) and merges the table each answers with
(``("gossip-ack", table)``).  Two replicas that share one seed therefore
learn of each other within a round, and everything a member advertises —
its registered workers, its load — rides along.

Conflict resolution is the classic **heartbeat rule**: every member stamps
its *own* entry with a monotonically increasing heartbeat each gossip
round, and a merge only accepts a remote entry when its heartbeat is
strictly newer than the local copy.  Liveness is the dual: an entry whose
heartbeat has not advanced within ``suspicion_timeout`` local seconds is
dropped, leaving a **tombstone** at its death heartbeat so the copies
still circulating through surviving members cannot resurrect it — a dead
peer stops bumping, so every echo of it carries a tombstoned heartbeat and
is ignored, while a member that is genuinely back (direct contact, or a
heartbeat above the tombstone) clears it.

The table is a plain thread-safe dict: the asyncio gossip loop mutates it
while executor threads (:class:`~repro.cluster.executor.ClusterExecutor`)
and cache-peering clients snapshot it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["MemberState", "ClusterMembership"]


@dataclass(frozen=True)
class MemberState:
    """One replica's view of one cluster member.

    Attributes:
        address: the member's ``"host:port"`` serve endpoint.
        heartbeat: the member's own monotonically increasing gossip counter.
        workers: the shard workers registered *at that member* (propagated
            so any replica can schedule onto the whole fleet).
        load: the member's in-flight request count when it last gossiped
            (the :class:`~repro.cluster.executor.ClusterExecutor` routing
            signal).
        last_refresh: local monotonic stamp of the last heartbeat advance.
        worker_backends: per-worker kernel backends the member's registry
            recorded at registration, keyed by worker address.  A worker
            missing from the map (an entry gossiped by an old replica)
            counts as numpy-only — the conservative default mirrors the
            shard-meta rule, so backend-aware routing never overestimates
            a fleet it cannot see.
    """

    address: str
    heartbeat: int
    workers: tuple[str, ...]
    load: int
    last_refresh: float
    worker_backends: dict = field(default_factory=dict)

    def export(self) -> dict:
        """The wire form of this entry (local stamps stay local).

        ``worker_backends`` is emitted only when non-empty — compatible
        growth on the gossip frame: old replicas simply never read the
        key (an entry relayed *through* one loses it, degrading those
        workers to the numpy-only default — conservative, never wrong).
        """
        exported = {
            "heartbeat": self.heartbeat,
            "workers": list(self.workers),
            "load": self.load,
        }
        if self.worker_backends:
            exported["worker_backends"] = {
                w: list(b) for w, b in self.worker_backends.items()
            }
        return exported


class ClusterMembership:
    """Thread-safe gossip membership table for one replica.

    Args:
        self_address: this replica's advertised ``"host:port"``; ``None``
            until :meth:`bind` (servers that bind port 0 learn their
            address at start time).
        seeds: addresses gossiped to even while unconfirmed — the join
            list.  A seed that answers becomes a live member; one that
            never answers costs one failed exchange per round, nothing
            else.  Every seed is validated and normalised through
            :func:`repro.service.address.parse_address` at construction —
            a typo'd ``--join`` fails at boot with a pointed error, not as
            an eternally-failing exchange.
        suspicion_timeout: local seconds without a heartbeat advance before
            a member is declared dead and dropped.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(self, self_address: str | None = None, *, seeds=(),
                 suspicion_timeout: float = 30.0, clock=time.monotonic):
        if suspicion_timeout <= 0:
            raise ValueError(
                f"suspicion_timeout={suspicion_timeout} must be positive"
            )
        self._lock = threading.Lock()
        self._members: dict[str, MemberState] = {}
        # Tombstones: address -> (heartbeat at expiry, local expiry stamp).
        # Surviving replicas keep relaying a dead member's last entry to
        # each other; without remembering the heartbeat it died at, every
        # relay would resurrect the entry (current is None after the drop,
        # so the stale heartbeat "wins") and the corpse would oscillate
        # between tables forever.  A tombstone blocks re-adds at or below
        # the death heartbeat; direct contact (the member itself gossiping
        # to us) or a higher heartbeat clears it.
        self._tombstones: dict[str, tuple[int, float]] = {}
        self._clock = clock
        from repro.service.address import format_address, parse_address

        if self_address is not None:
            self_address = format_address(*parse_address(self_address))
        self.self_address = self_address
        self.seeds: tuple[str, ...] = tuple(
            format_address(*parse_address(s)) for s in seeds
        )
        self.suspicion_timeout = suspicion_timeout
        self._heartbeat = 0
        self.merges = 0
        self.expiries = 0

    # ------------------------------------------------------------- identity
    def bind(self, address: str) -> None:
        """Set this replica's advertised address (idempotent first-wins)."""
        from repro.service.address import format_address, parse_address

        with self._lock:
            if self.self_address is None:
                self.self_address = format_address(*parse_address(address))
            # A stale entry for our own address learned before binding
            # (e.g. relayed by a peer) must not shadow the live self entry.
            self._members.pop(self.self_address, None)

    def bump(self, *, workers=(), load: int = 0, worker_backends=None) -> int:
        """Advance this replica's heartbeat and refresh its own entry.

        Called once per gossip round with the *current* local worker
        registry and load (plus the registry's per-worker kernel-backend
        map), so the table always exports a fresh self state.  Requires
        :meth:`bind` to have run.
        """
        if self.self_address is None:
            raise RuntimeError("membership is not bound to a self address")
        with self._lock:
            self._heartbeat += 1
            self._members[self.self_address] = MemberState(
                address=self.self_address,
                heartbeat=self._heartbeat,
                workers=tuple(str(w) for w in workers),
                load=int(load),
                last_refresh=self._clock(),
                worker_backends={
                    str(w): tuple(str(b) for b in bs)
                    for w, bs in dict(worker_backends or {}).items()
                },
            )
            return self._heartbeat

    # ---------------------------------------------------------------- merge
    def merge(self, remote: dict, *, direct_from: str | None = None) -> list[str]:
        """Fold a peer's exported table in; returns newly learned addresses.

        The heartbeat rule: a remote entry wins only when its heartbeat is
        strictly greater than the local copy's, and our own entry is never
        overwritten (we are the sole authority on ourselves).  Malformed
        entries are skipped — one bad peer must not poison the table.

        ``direct_from`` names the peer this table arrived from directly
        (the gossip sender, or the member a gossip-ack was pulled from).
        Direct contact is proof of life, so that member's own entry always
        clears its tombstone — which is how a restarted member (whose
        heartbeat restarted from 1, below its death heartbeat) rejoins.
        Entries relayed *second-hand* at or below their tombstoned
        heartbeat are skipped: they are echoes of a corpse, and accepting
        them would resurrect dead members forever.
        """
        learned: list[str] = []
        now = self._clock()
        with self._lock:
            for address, info in dict(remote).items():
                address = str(address)
                if address == self.self_address:
                    continue
                try:
                    state = MemberState(
                        address=address,
                        heartbeat=int(info["heartbeat"]),
                        workers=tuple(str(w) for w in info.get("workers", ())),
                        load=int(info.get("load", 0)),
                        last_refresh=now,
                        # Absent on frames from old replicas: those workers
                        # route as numpy-only (the compatible default).
                        worker_backends={
                            str(w): tuple(str(b) for b in bs)
                            for w, bs in dict(
                                info.get("worker_backends") or {}
                            ).items()
                        },
                    )
                except (TypeError, KeyError, ValueError):
                    continue
                tombstone = self._tombstones.get(address)
                if tombstone is not None:
                    if address == direct_from or state.heartbeat > tombstone[0]:
                        del self._tombstones[address]  # provably alive again
                    else:
                        continue  # a relayed echo of the dead entry
                current = self._members.get(address)
                if current is None:
                    self._members[address] = state
                    learned.append(address)
                    self.merges += 1
                elif state.heartbeat > current.heartbeat or address == direct_from:
                    # Direct contact supersedes even a *higher* stored
                    # heartbeat: a member that restarted inside the
                    # suspicion window restarts its counter below its old
                    # entry, and it is the sole authority on itself — the
                    # lower heartbeat is the fresher truth.
                    self._members[address] = state
                    self.merges += 1
        return learned

    def drop_expired(self, now: float | None = None) -> list[str]:
        """Remove members whose heartbeat stalled past the suspicion window.

        Dropped members leave a tombstone (see :meth:`merge`) that itself
        expires after a few suspicion windows — by then every live table
        has dropped the entry too, so no echo of it is left to resurrect.
        """
        now = self._clock() if now is None else now
        dropped: list[str] = []
        with self._lock:
            for address, state in list(self._members.items()):
                if address == self.self_address:
                    continue
                if now - state.last_refresh >= self.suspicion_timeout:
                    del self._members[address]
                    self._tombstones[address] = (state.heartbeat, now)
                    dropped.append(address)
                    self.expiries += 1
            for address, (_, stamp) in list(self._tombstones.items()):
                if now - stamp >= 4 * self.suspicion_timeout:
                    del self._tombstones[address]
        return dropped

    # ------------------------------------------------------------ snapshots
    def peers(self) -> list[str]:
        """Live member addresses, self excluded, sorted for determinism."""
        with self._lock:
            return sorted(a for a in self._members if a != self.self_address)

    def gossip_targets(self) -> list[str]:
        """Who to gossip to this round: live peers plus unconfirmed seeds."""
        with self._lock:
            targets = {a for a in self._members if a != self.self_address}
            targets.update(s for s in self.seeds if s != self.self_address)
            return sorted(targets)

    def snapshot(self) -> dict[str, MemberState]:
        """A point-in-time copy of the whole table (self entry included)."""
        with self._lock:
            return dict(self._members)

    def export(self) -> dict:
        """The wire form of the table — what one gossip frame carries."""
        with self._lock:
            return {a: s.export() for a, s in self._members.items()}

    def cluster_workers(self) -> dict[str, str]:
        """Deduplicated ``worker address -> owning member`` over the table.

        Iterates members in ascending-load order, so when two members both
        advertise one worker the less-loaded owner wins — the ordering the
        :class:`~repro.cluster.executor.ClusterExecutor` schedules by.
        """
        with self._lock:
            members = sorted(
                self._members.values(), key=lambda s: (s.load, s.address)
            )
            owners: dict[str, str] = {}
            for state in members:
                for worker in state.workers:
                    owners.setdefault(worker, state.address)
            return owners

    def worker_backends(self) -> dict[str, tuple[str, ...]]:
        """``worker address -> advertised kernel backends`` over the table.

        Same ascending-load dedup order as :meth:`cluster_workers`; a
        worker whose owning member gossiped no backend map (an old
        replica) counts as numpy-only.
        """
        with self._lock:
            members = sorted(
                self._members.values(), key=lambda s: (s.load, s.address)
            )
            capabilities: dict[str, tuple[str, ...]] = {}
            for state in members:
                for worker in state.workers:
                    capabilities.setdefault(
                        worker,
                        tuple(state.worker_backends.get(worker, ("numpy",))),
                    )
            return capabilities

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    def stats(self) -> dict:
        """Counters plus the live table, for the status surface."""
        now = self._clock()
        with self._lock:
            return {
                "self": self.self_address,
                "seeds": list(self.seeds),
                "suspicion_timeout_s": self.suspicion_timeout,
                "merges": self.merges,
                "expiries": self.expiries,
                "tombstones": sorted(self._tombstones),
                "members": {
                    a: {
                        **s.export(),
                        "age_s": round(now - s.last_refresh, 3),
                    }
                    for a, s in sorted(self._members.items())
                },
            }
