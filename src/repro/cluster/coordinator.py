"""The per-replica cluster agent: gossip loop plus peer-facing handlers.

One :class:`ClusterCoordinator` rides on each clustered
:class:`~repro.service.server.SearchServer`.  It owns two jobs:

1. **Gossip out** — an asyncio task that, every ``gossip_interval``
   seconds, bumps this replica's heartbeat (folding in the live worker
   registry and service load), expires suspected-dead members, and runs one
   push–pull exchange with every known peer and seed.  Exchange failures
   are counted and logged, never raised: a peer dying mid-gossip costs one
   failed round trip and its table entry quietly ages out.

2. **Answer in** — the server routes the cluster messages here:

   - ``("gossip", sender, table)`` -> ``("gossip-ack", table)`` — merge
     theirs (the sender's own entry counts as *direct contact*, clearing
     any tombstone), answer with ours (the pull half of push–pull);
   - ``("cache-peek", key, wait_s)`` -> ``("cache-found", bytes, digest)``
     or ``("cache-none",)`` — probe the local TTL cache without touching
     its LRU order or stats; when the key is *currently computing* here,
     hold the probe up to ``wait_s`` for the in-flight future (cluster-wide
     single-flight);
   - ``("cluster-status",)`` -> ``("cluster-status", dict)`` — the
     membership table, peering counters, and worker fleet for
     ``repro cluster status``.

The coordinator is constructed with just the membership and timing knobs;
the server wires in its bound address, registry, and service at start time
(:meth:`attach`) so port-0 binds and test harnesses stay simple.
"""

from __future__ import annotations

import asyncio
import logging
from collections import OrderedDict

from repro.cluster.peering import encode_cached_report
from repro.service.wire import (
    WireError,
    recv_frame_async,
    send_frame_async,
)

__all__ = ["ClusterCoordinator"]

log = logging.getLogger("repro.cluster")

_MISS = object()


class ClusterCoordinator:
    """Gossip agent + cluster message handler for one serve replica.

    Args:
        membership: the replica's :class:`~repro.cluster.membership.ClusterMembership`
            (shared with its :class:`~repro.cluster.executor.ClusterExecutor`
            and :class:`~repro.cluster.peering.CachePeers`).
        gossip_interval: seconds between gossip rounds.
        gossip_timeout: per-peer budget for one exchange (connect + round
            trip).
        breakers: shared :class:`~repro.resilience.BreakerRegistry` — a
            quarantined member is skipped (no dial) until its breaker
            half-opens, and exchange outcomes feed the same breakers the
            executor and cache peering use.  ``None`` disables it.
        chaos: optional :class:`~repro.resilience.FaultPlan` consulted at
            the ``gossip.exchange`` site (``refuse`` / ``slow`` / ``drop``).
    """

    def __init__(self, membership, *, gossip_interval: float = 2.0,
                 gossip_timeout: float = 3.0, breakers=None, chaos=None):
        if gossip_interval <= 0:
            raise ValueError(f"gossip_interval={gossip_interval} must be positive")
        self.membership = membership
        self.gossip_interval = gossip_interval
        self.gossip_timeout = gossip_timeout
        self.breakers = breakers
        self.chaos = chaos
        self.registry = None
        self.service = None
        self._task: asyncio.Task | None = None
        # Memo of encoded peek payloads: key -> (value, body, digest).
        # Holding the value reference makes the identity check sound (no
        # id() reuse while memoized) and keeps a hot fingerprint from
        # being re-pickled + re-hashed for every probing sibling.
        self._encoded: "OrderedDict[str, tuple]" = OrderedDict()
        self.rounds = 0
        self.failed_exchanges = 0
        self.skipped_exchanges = 0
        self.peeks_served = 0
        self.peek_hits = 0

    # ------------------------------------------------------------ lifecycle
    def attach(self, address: str, *, registry=None, service=None) -> None:
        """Bind the replica's advertised address and live collaborators.

        Called by :meth:`SearchServer.start` once the bind address is known;
        idempotent on the address (an explicit ``--cluster-advertise`` set
        before start wins over the bound address).
        """
        self.membership.bind(address)
        if registry is not None:
            self.registry = registry
        if service is not None:
            self.service = service

    async def start(self) -> None:
        """Seed the self entry and start the periodic gossip task."""
        if self.membership.self_address is None:
            raise RuntimeError(
                "coordinator not attached: call attach() with the bound "
                "address before start()"
            )
        self.membership.bump(workers=self._local_workers(),
                             load=self._local_load(),
                             worker_backends=self._local_worker_backends())
        if self._task is None:
            self._task = asyncio.create_task(self._gossip_loop())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    # --------------------------------------------------------------- gossip
    def _local_workers(self):
        return self.registry.snapshot() if self.registry is not None else ()

    def _local_worker_backends(self):
        if self.registry is None:
            return {}
        backends = getattr(self.registry, "worker_backends", None)
        return backends() if callable(backends) else {}

    def _local_load(self) -> int:
        return self.service.stats.in_flight if self.service is not None else 0

    async def gossip_once(self) -> None:
        """One full round: bump, expire, exchange with every target.

        Public so tests (and embedders) can force convergence instead of
        waiting out the interval.
        """
        self.membership.bump(workers=self._local_workers(),
                             load=self._local_load(),
                             worker_backends=self._local_worker_backends())
        dropped = self.membership.drop_expired()
        for address in dropped:
            log.warning("cluster member %s suspected dead; dropped", address)
        targets = self.membership.gossip_targets()
        if targets:
            await asyncio.gather(
                *(self._exchange(a) for a in targets)
            )
        self.rounds += 1

    async def _exchange(self, address: str) -> None:
        """One push–pull exchange; failures are counted, never raised.

        A quarantined member (open breaker) is skipped without dialing —
        its table entry keeps ageing toward suspicion, and the half-open
        probe is what re-establishes contact.  Outcomes feed the shared
        breaker so gossip evidence protects the serving paths too.
        """
        from repro.service.address import parse_address

        breaker = self.breakers.get(address) if self.breakers is not None \
            else None
        if breaker is not None and not breaker.allow():
            self.skipped_exchanges += 1
            return
        if self.chaos is not None:
            spec = self.chaos.visit("gossip.exchange")
            if spec is not None:
                if spec.kind == "slow":
                    await asyncio.sleep(spec.delay_s)
                elif spec.kind in ("refuse", "drop"):
                    self.failed_exchanges += 1
                    if breaker is not None:
                        breaker.record_failure()
                    log.debug("gossip with %s failed: chaos %s",
                              address, spec.kind)
                    return
        writer = None
        try:
            host, port = parse_address(address)
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port),
                timeout=self.gossip_timeout,
            )
            await asyncio.wait_for(
                send_frame_async(writer, ("gossip",
                                          self.membership.self_address,
                                          self.membership.export())),
                timeout=self.gossip_timeout,
            )
            reply = await asyncio.wait_for(
                recv_frame_async(reader), timeout=self.gossip_timeout
            )
            if isinstance(reply, tuple) and len(reply) == 2 \
                    and reply[0] == "gossip-ack":
                # The ack came straight from *address*: its own entry is
                # direct contact (clears any tombstone for it).
                self.membership.merge(reply[1], direct_from=address)
                if breaker is not None:
                    breaker.record_success()
            else:
                raise WireError(f"unexpected gossip reply: {reply!r}")
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # Peer death mid-gossip, a seed that is not up yet, or a reply
            # this build cannot even unpickle (mixed-build skew): one
            # failed exchange, the entry ages out via suspicion — the loop
            # and the serving path are unaffected.  Deliberately broad: an
            # exchange must never kill the gossip task.
            self.failed_exchanges += 1
            if breaker is not None:
                breaker.record_failure()
            log.debug("gossip with %s failed: %s", address, exc)
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except OSError:
                    pass

    async def _gossip_loop(self) -> None:
        while True:
            await asyncio.sleep(self.gossip_interval)
            try:
                await self.gossip_once()
            except asyncio.CancelledError:
                raise
            except Exception:
                # A round must never end the loop: a replica that stops
                # heartbeating gets expired by its peers while it still
                # serves — the worst silent degradation this layer has.
                log.exception("gossip round failed; retrying next interval")

    # ------------------------------------------------------------- handlers
    async def dispatch(self, message: tuple) -> tuple:
        """Answer one cluster message (the server routes these here)."""
        kind = message[0]
        if kind == "gossip":
            try:
                _, sender, table = message
                self.membership.merge(table, direct_from=str(sender))
            except (TypeError, ValueError):
                return ("error",
                        "gossip message must be (gossip, sender, table)")
            return ("gossip-ack", self.membership.export())
        if kind == "cache-peek":
            try:
                _, key, wait_s = message
                wait_s = float(wait_s)
            except (TypeError, ValueError):
                return ("error",
                        "cache-peek message must be (cache-peek, key, wait_s)")
            return await self._cache_peek(str(key), wait_s)
        if kind == "cluster-status":
            return ("cluster-status", self.status())
        return ("error", f"unknown cluster message type {kind!r}")

    async def _cache_peek(self, key: str, wait_s: float) -> tuple:
        self.peeks_served += 1
        if self.service is None:
            return ("cache-none",)
        value = self.service.cache.peek(key, _MISS)
        if value is _MISS and wait_s > 0:
            # Cluster-wide single-flight: the key is computing right here —
            # hold the probe (bounded) and hand over the finished report
            # instead of letting the asking replica recompute it.
            future = self.service.inflight_future(key)
            if future is not None:
                try:
                    value = await asyncio.wait_for(
                        asyncio.shield(future), min(wait_s, 60.0)
                    )
                except asyncio.CancelledError:
                    if not future.cancelled():
                        raise  # this handler was cancelled, not the job
                    value = _MISS
                except Exception:
                    # Timeout, or the computation failed — the asking
                    # replica just computes locally.
                    value = _MISS
        if value is _MISS:
            return ("cache-none",)
        memo = self._encoded.get(key)
        if memo is not None and memo[0] is value:
            body, digest = memo[1], memo[2]
        else:
            # Pickling + hashing a big BatchReport is CPU work — off the
            # loop, so a peek hit never stalls this replica's other
            # connections; memoised so a hot fingerprint probed by N
            # siblings is encoded once, not N times.
            body, digest = await asyncio.to_thread(encode_cached_report, value)
            self._encoded[key] = (value, body, digest)
            self._encoded.move_to_end(key)
            while len(self._encoded) > 32:
                self._encoded.popitem(last=False)
        self.peek_hits += 1
        return ("cache-found", body, digest)

    # --------------------------------------------------------------- status
    def status(self) -> dict:
        """Everything ``repro cluster status`` prints for this replica."""
        info = {
            "membership": self.membership.stats(),
            "workers": sorted(self.membership.cluster_workers()),
            "worker_backends": {
                w: list(b)
                for w, b in sorted(self.membership.worker_backends().items())
            },
            "gossip": {
                "interval_s": self.gossip_interval,
                "rounds": self.rounds,
                "failed_exchanges": self.failed_exchanges,
                "skipped_exchanges": self.skipped_exchanges,
            },
            "cache_peering": {
                "peeks_served": self.peeks_served,
                "peek_hits": self.peek_hits,
            },
        }
        if self.breakers is not None:
            info["breakers"] = self.breakers.snapshot()
        if self.service is not None and self.service.peering is not None:
            info["cache_peering"]["outbound"] = self.service.peering.stats()
        return info
