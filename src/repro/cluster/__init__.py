"""``repro.cluster`` — federated ``repro serve`` replicas.

Three pieces turn independent serving replicas into one cluster, all built
on the existing length-prefixed wire (protocol v3,
:mod:`repro.service.wire`):

1. **Membership** (:mod:`repro.cluster.membership`): a seed-list +
   push–pull gossip protocol.  Replicas started with ``repro serve --join
   host:port`` exchange full member tables on a timer; entries carry each
   member's heartbeat (conflict resolution), registered workers, and load,
   and age out when their heartbeat stalls (suspicion timeout).
2. **Cache peering** (:mod:`repro.cluster.peering` +
   :class:`~repro.cluster.coordinator.ClusterCoordinator`): on a local TTL
   cache miss the service probes its peers by structural request
   fingerprint before computing; payloads are digest-verified bit-identical
   and a peer mid-computation holds the probe (single-flight, now
   cluster-wide).
3. **Cluster scheduling** (:mod:`repro.cluster.executor`): workers
   ``--register`` with *one* replica and gossip propagates them to all;
   the :class:`ClusterExecutor` ranks the cluster-wide fleet by owning
   member load and fans shards over it, falling back to local compute when
   the fleet is gone.

Trust model is unchanged from :mod:`repro.service`: frames are pickles,
so replicas gossip only over trusted networks.
"""

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.executor import ClusterExecutor
from repro.cluster.membership import ClusterMembership, MemberState
from repro.cluster.peering import (
    CachePeers,
    PeerPayloadError,
    decode_cached_report,
    encode_cached_report,
)

__all__ = [
    "ClusterCoordinator",
    "ClusterExecutor",
    "ClusterMembership",
    "MemberState",
    "CachePeers",
    "PeerPayloadError",
    "encode_cached_report",
    "decode_cached_report",
]
