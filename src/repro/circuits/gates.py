"""The gate set: a small, closed vocabulary the simulator knows natively.

Multi-controlled gates are first-class (not decomposed into Toffolis): the
paper counts *oracle queries*, not two-qubit gates, so the IR keeps the
query-relevant structure explicit while remaining executable.  Each gate is
an immutable record; validation happens at construction so circuits are
well-formed by the time they reach the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Gate", "GATE_NAMES"]

#: Recognised gate names and their arity rules (checked in ``__post_init__``).
GATE_NAMES = {
    "H": "single",       # Hadamard
    "X": "single",       # bit flip
    "Z": "single",       # phase flip
    "P": "single",       # phase(phi) on |1>
    "CZ": "two",         # controlled-Z (symmetric)
    "CX": "two",         # controlled-X (control first)
    "MCZ": "multi",      # Z on the all-ones pattern of the listed qubits
    "MCP": "multi",      # phase(phi) on the all-ones pattern
    "MCX": "multi",      # X on the last qubit, controlled on the others
    "GPHASE": "none",    # global phase e^{i phi} (bookkeeping, 0 qubits)
}


@dataclass(frozen=True)
class Gate:
    """One gate application.

    Attributes:
        name: one of :data:`GATE_NAMES`.
        qubits: wire indices the gate touches (order matters for ``CX`` —
            control first — and ``MCX`` — target last).
        param: phase parameter for ``P``/``MCP``/``GPHASE``; ``None`` others.
        tag: free-form label; the builders tag oracle gates ``"oracle"`` so
            circuit-level query counting is possible.
    """

    name: str
    qubits: tuple[int, ...] = ()
    param: float | None = None
    tag: str | None = field(default=None, compare=False)

    def __post_init__(self):
        if self.name not in GATE_NAMES:
            raise ValueError(f"unknown gate {self.name!r}")
        arity = GATE_NAMES[self.name]
        nq = len(self.qubits)
        if arity == "single" and nq != 1:
            raise ValueError(f"{self.name} needs exactly 1 qubit, got {nq}")
        if arity == "two" and nq != 2:
            raise ValueError(f"{self.name} needs exactly 2 qubits, got {nq}")
        if arity == "multi" and nq < 1:
            raise ValueError(f"{self.name} needs at least 1 qubit")
        if arity == "none" and nq != 0:
            raise ValueError(f"{self.name} takes no qubits")
        if len(set(self.qubits)) != nq:
            raise ValueError(f"duplicate qubits in {self.name}: {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise ValueError("qubit indices must be non-negative")
        needs_param = self.name in ("P", "MCP", "GPHASE")
        if needs_param and self.param is None:
            raise ValueError(f"{self.name} requires a phase parameter")
        if not needs_param and self.param is not None:
            raise ValueError(f"{self.name} takes no parameter")

    @property
    def is_oracle(self) -> bool:
        """Whether this gate was tagged as part of an oracle call."""
        return self.tag == "oracle"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        args = ",".join(map(str, self.qubits))
        param = f"({self.param:.4f})" if self.param is not None else ""
        return f"{self.name}{param}[{args}]"
