"""Circuit builders for every unitary the paper uses.

All builders follow the same conventions:

- qubit 0 is the most significant address bit (the first of the "first k
  bits"); an ancilla, when present, is the **last** wire, so a basis index
  reads ``address * 2 + ancilla``;
- each oracle invocation tags exactly one gate (``MCZ`` for the phase
  oracle, ``MCX`` for the bit-flip/move-out oracle) with ``tag="oracle"``,
  making :attr:`repro.circuits.circuit.Circuit.oracle_queries` the paper's
  query count;
- diffusion circuits include a ``GPHASE(pi)`` so they equal ``+I_0 = 2
  |psi_0><psi_0| - I`` *exactly* (not up to sign), letting tests compare
  state vectors elementwise against :mod:`repro.statevector.ops`.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.util.bits import int_to_bits

__all__ = [
    "uniform_superposition_circuit",
    "oracle_circuit",
    "move_out_circuit",
    "diffusion_circuit",
    "block_diffusion_circuit",
    "grover_circuit",
    "partial_search_circuit",
]


def _address_qubits(n_address_qubits: int) -> tuple[int, ...]:
    return tuple(range(n_address_qubits))


def uniform_superposition_circuit(n_qubits: int, qubits=None) -> Circuit:
    """``H`` on every listed qubit (all wires by default): ``|0..0> -> |psi_0>``."""
    circ = Circuit(n_qubits)
    for q in qubits if qubits is not None else range(n_qubits):
        circ.append(Gate("H", (q,)))
    return circ


def _x_conjugation(circ: Circuit, qubits, pattern_bits) -> None:
    """X on each qubit whose pattern bit is 0 (maps the pattern to all-ones)."""
    for q, bit in zip(qubits, pattern_bits):
        if bit == 0:
            circ.append(Gate("X", (q,)))


def oracle_circuit(n_qubits: int, target: int, n_address_qubits: int | None = None) -> Circuit:
    """The phase oracle ``I_t = I - 2|t><t|`` on the address register.

    X-conjugate the target pattern onto all-ones, apply one (oracle-tagged)
    ``MCZ`` over the address qubits, undo the conjugation.
    """
    if n_address_qubits is None:
        n_address_qubits = n_qubits
    qubits = _address_qubits(n_address_qubits)
    bits = int_to_bits(target, n_address_qubits)
    circ = Circuit(n_qubits)
    _x_conjugation(circ, qubits, bits)
    circ.append(Gate("MCZ", qubits, tag="oracle"))
    _x_conjugation(circ, qubits, bits)
    return circ


def move_out_circuit(n_qubits: int, target: int, n_address_qubits: int) -> Circuit:
    """Step 3's ``M`` (= the bit-flip oracle ``T_f``): flip the ancilla
    (last wire) iff the address equals the target.  One tagged query."""
    if n_address_qubits >= n_qubits:
        raise ValueError("move-out needs an ancilla wire after the address qubits")
    qubits = _address_qubits(n_address_qubits)
    bits = int_to_bits(target, n_address_qubits)
    ancilla = n_qubits - 1
    circ = Circuit(n_qubits)
    _x_conjugation(circ, qubits, bits)
    circ.append(Gate("MCX", qubits + (ancilla,), tag="oracle"))
    _x_conjugation(circ, qubits, bits)
    return circ


def _diffusion_core(circ: Circuit, qubits, extra_controls=()) -> None:
    """``H X (MCZ over qubits+extra_controls) X H`` on *qubits*."""
    for q in qubits:
        circ.append(Gate("H", (q,)))
    for q in qubits:
        circ.append(Gate("X", (q,)))
    circ.append(Gate("MCZ", tuple(qubits) + tuple(extra_controls)))
    for q in qubits:
        circ.append(Gate("X", (q,)))
    for q in qubits:
        circ.append(Gate("H", (q,)))


def diffusion_circuit(n_qubits: int, qubits=None) -> Circuit:
    """``I_0 = 2|psi_0><psi_0| - I`` over the listed qubits (all by default).

    The trailing ``GPHASE(pi)`` converts the natural
    ``H X MCZ X H = I - 2|psi_0><psi_0|`` into exactly ``+I_0``.
    """
    if qubits is None:
        qubits = tuple(range(n_qubits))
    circ = Circuit(n_qubits)
    _diffusion_core(circ, tuple(qubits))
    circ.append(Gate("GPHASE", (), math.pi))
    return circ


def block_diffusion_circuit(n_qubits: int, n_block_bits: int, n_address_qubits: int | None = None) -> Circuit:
    """``I_K ⊗ I_0,[N/K]``: diffusion on the *last* ``n - k`` address qubits.

    Because the block index is the first ``k`` bits, acting on the remaining
    address qubits performs an independent inversion about the mean inside
    every block simultaneously — Step 2's parallel operator.
    """
    if n_address_qubits is None:
        n_address_qubits = n_qubits
    if not 0 <= n_block_bits < n_address_qubits:
        raise ValueError("need 0 <= n_block_bits < n_address_qubits")
    qubits = tuple(range(n_block_bits, n_address_qubits))
    circ = Circuit(n_qubits)
    _diffusion_core(circ, qubits)
    circ.append(Gate("GPHASE", (), math.pi))
    return circ


def grover_circuit(n_qubits: int, target: int, iterations: int) -> Circuit:
    """Full standard-search circuit: preparation + ``iterations`` of
    ``I_0 · I_t`` (each costing one tagged query)."""
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    circ = uniform_superposition_circuit(n_qubits)
    step = oracle_circuit(n_qubits, target).compose(diffusion_circuit(n_qubits))
    return circ.compose(step.repeated(iterations))


def _controlled_on_zero_diffusion(n_qubits: int, n_address_qubits: int) -> Circuit:
    """Step 3's controlled inversion: ``|0><0|_b ⊗ I_0 + |1><1|_b ⊗ I``.

    Built as ``X(b) · [H X (MCZ over address + b) X H] · X(b)`` — the
    conjugating layers cancel on the ``b = 1`` branch — followed by
    ``GPHASE(pi) · Z(b)``, which applies the −1 exactly on the ``b = 0``
    branch (turning ``I - 2|psi_0><psi_0|`` into ``+I_0`` there and the
    identity into the identity on ``b = 1``).
    """
    ancilla = n_qubits - 1
    qubits = _address_qubits(n_address_qubits)
    circ = Circuit(n_qubits)
    circ.append(Gate("X", (ancilla,)))
    _diffusion_core(circ, qubits, extra_controls=(ancilla,))
    circ.append(Gate("X", (ancilla,)))
    circ.append(Gate("GPHASE", (), math.pi))
    circ.append(Gate("Z", (ancilla,)))
    return circ


def partial_search_circuit(
    n_address_qubits: int,
    n_block_bits: int,
    target: int,
    l1: int,
    l2: int,
) -> Circuit:
    """The complete GRK circuit on ``n + 1`` wires (ancilla last).

    Steps: uniform preparation; ``l1`` global iterations; ``l2`` block-local
    iterations; move-out ``M``; controlled inversion about the average.
    ``oracle_queries`` of the result equals ``l1 + l2 + 1``.  Measuring the
    first ``n_block_bits`` wires of the output yields the target's block.
    """
    if not 1 <= n_block_bits < n_address_qubits:
        raise ValueError("need 1 <= n_block_bits < n_address_qubits")
    if l1 < 0 or l2 < 0:
        raise ValueError("iteration counts must be non-negative")
    n_qubits = n_address_qubits + 1
    circ = uniform_superposition_circuit(n_qubits, qubits=range(n_address_qubits))
    global_step = oracle_circuit(n_qubits, target, n_address_qubits).compose(
        diffusion_circuit(n_qubits, qubits=range(n_address_qubits))
    )
    block_step = oracle_circuit(n_qubits, target, n_address_qubits).compose(
        block_diffusion_circuit(n_qubits, n_block_bits, n_address_qubits)
    )
    circ = circ.compose(global_step.repeated(l1)).compose(block_step.repeated(l2))
    circ = circ.compose(move_out_circuit(n_qubits, target, n_address_qubits))
    circ = circ.compose(_controlled_on_zero_diffusion(n_qubits, n_address_qubits))
    return circ
