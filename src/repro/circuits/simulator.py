"""Qubit-wise state-vector execution of circuits.

States are complex vectors of length ``2**n_qubits`` in big-endian order
(qubit 0 = most significant bit), so the integer basis index *is* the
paper's address (with the ancilla, if any, as the least significant bit —
builders put it on the last wire).

Single-qubit gates are applied via a reshape to ``(left, 2, right)`` and a
batched 2x2 matmul (a view, no copy of the state layout); multi-controlled
diagonal/permutation gates select their matching basis indices from the
compiler's process-wide pattern cache (:func:`repro.circuits.compiler`'s
``_pattern_indices``) instead of reallocating an ``np.arange(2**n)`` per
gate — the gate-by-gate structure (one gate, one pass, fresh state copy) is
deliberately unchanged, since this simulator is the correctness oracle the
fused backend is property-tested against.
"""

from __future__ import annotations

import cmath

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.compiler import _pair_indices, _pattern_indices
from repro.circuits.gates import Gate

__all__ = ["apply_gate", "run_circuit"]

_SQRT2 = 1.0 / np.sqrt(2.0)
_H = np.array([[_SQRT2, _SQRT2], [_SQRT2, -_SQRT2]], dtype=np.complex128)
_X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=np.complex128)
_Z = np.array([[1.0, 0.0], [0.0, -1.0]], dtype=np.complex128)


def _apply_single(state: np.ndarray, mat: np.ndarray, qubit: int, n_qubits: int) -> np.ndarray:
    left = 1 << qubit
    right = 1 << (n_qubits - 1 - qubit)
    view = state.reshape(left, 2, right)
    if mat.dtype != state.dtype:  # keep narrow-dtype states narrow
        mat = mat.astype(state.dtype)
    # out[a, i, b] = sum_j mat[i, j] view[a, j, b]
    state = np.einsum("ij,ajb->aib", mat, view).reshape(-1)
    return state


def _ones_mask(qubits, n_qubits: int) -> int:
    mask = 0
    for q in qubits:
        mask |= 1 << (n_qubits - 1 - q)
    return mask


def apply_gate(state: np.ndarray, gate: Gate, n_qubits: int) -> np.ndarray:
    """Apply one gate; returns the (possibly new) state array."""
    name = gate.name
    if name == "H":
        return _apply_single(state, _H, gate.qubits[0], n_qubits)
    if name == "X":
        return _apply_single(state, _X, gate.qubits[0], n_qubits)
    if name == "Z":
        return _apply_single(state, _Z, gate.qubits[0], n_qubits)
    if name == "P":
        mat = np.array(
            [[1.0, 0.0], [0.0, cmath.exp(1j * gate.param)]], dtype=state.dtype
        )
        return _apply_single(state, mat, gate.qubits[0], n_qubits)
    if name == "GPHASE":
        state = state * cmath.exp(1j * gate.param)
        return state
    if name in ("CZ", "MCZ"):
        sel = _pattern_indices(n_qubits, _ones_mask(gate.qubits, n_qubits), 0)
        state = state.copy()
        state[sel] *= -1.0
        return state
    if name == "MCP":
        sel = _pattern_indices(n_qubits, _ones_mask(gate.qubits, n_qubits), 0)
        state = state.copy()
        state[sel] *= cmath.exp(1j * gate.param)
        return state
    if name in ("CX", "MCX"):
        controls, target = gate.qubits[:-1], gate.qubits[-1]
        cmask = _ones_mask(controls, n_qubits)
        tbit = 1 << (n_qubits - 1 - target)
        lo, hi = _pair_indices(n_qubits, cmask, 0, tbit)
        state = state.copy()
        # Fancy indexing on the right-hand side already yields fresh arrays,
        # so the pairs swap with a single temporary and no extra full copies.
        state[lo], state[hi] = state[hi], state[lo]
        return state
    raise ValueError(f"simulator does not know gate {name!r}")  # pragma: no cover


def run_circuit(
    circuit: Circuit, initial: np.ndarray | None = None, *, dtype=np.complex128
) -> np.ndarray:
    """Execute *circuit* from ``|0...0>`` (or a given initial state).

    Returns the final state as a fresh complex array of length
    ``2**n_qubits`` at the requested *dtype* (complex128 default; complex64
    for the :class:`~repro.kernels.ExecutionPolicy` fast mode — gate
    matrices are cast down so the state never silently upcasts).
    """
    dim = 1 << circuit.n_qubits
    if initial is None:
        state = np.zeros(dim, dtype=dtype)
        state[0] = 1.0
    else:
        state = np.asarray(initial, dtype=dtype).copy()
        if state.shape != (dim,):
            raise ValueError(f"initial state must have shape ({dim},)")
    for gate in circuit:
        state = apply_gate(state, gate, circuit.n_qubits)
    return state
