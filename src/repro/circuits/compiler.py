"""Compiled circuit execution: mask caching, gate fusion, batched runs.

The naive simulator in :mod:`repro.circuits.simulator` walks the gate list
one gate at a time, allocating a fresh ``np.arange(2**n)`` index array and
several full-state copies per controlled gate.  That is fine as a
correctness oracle but wasteful for the benchmarks, which execute the same
GRK circuit for *every* target address.  This module lowers a
:class:`~repro.circuits.circuit.Circuit` **once** into a short program of
fused operations and then runs that program over one state, a batch of
states, or a batch of per-row targets:

1. **Mask caching** — the boolean-pattern index arrays behind controlled
   gates (``CZ``/``MCZ``/``MCP``/``CX``/``MCX``) are precomputed per
   ``(n_qubits, ones_mask, zeros_mask[, target_bit])`` signature and shared
   process-wide, so ``l1`` identical oracle gates cost one enumeration, not
   ``l1`` full ``arange`` allocations.  Patterns are enumerated directly
   from their free bits (O(#matching indices), not O(2**n)).
2. **Conjugated-control recognition** — the builders' ``X``-layer /
   multi-controlled gate / ``X``-layer sandwich (the oracle and move-out
   motifs) collapses into a single masked phase flip or index swap on the
   conjugated pattern, eliminating the 2·(#zero bits) single-qubit ``X``
   sweeps per oracle call.
3. **Diffusion recognition** — the ``H* X* MCZ X* H*`` motif (builders'
   ``_diffusion_core``) is dispatched to the O(N) inversion-about-the-mean
   kernel of :mod:`repro.statevector.ops` fame: one reshaped mean and one
   fused subtract instead of ~4·|Q| single-qubit passes plus a masked flip.
   A following ``GPHASE(pi)`` is folded into the kernel's sign.
4. **Single-qubit fusion** — adjacent single-qubit gates on one wire (gates
   on *other* wires commute through) multiply into one 2x2 matrix; products
   that reach the identity are dropped entirely.
5. **Diagonal coalescing** — runs of diagonal gates (``Z``/``P``/``CZ``/
   ``MCZ``/``MCP``/``GPHASE`` and the masked flips produced by pass 2)
   merge into a single elementwise phase vector, or back into a scalar /
   masked flip when the merged vector is that sparse.

Every compiled operation broadcasts over leading axes, so one program runs
a ``(B, N)`` batch at full numpy throughput.  Programs compiled with
``parametric_targets=True`` additionally expose
:meth:`CompiledCircuit.run_multi_target`: oracle-tagged pattern ops read a
per-row target address at run time, so one compiled program serves an
all-targets sweep — the masks, fused matrices, and diffusion plans are
shared across the whole batch.

The *state math* of the fused ops is not implemented here: masked phase
multiplies, inversions about an axis mean, and the per-row parametric
oracle/move-out all dispatch to :mod:`repro.kernels` (the unified kernel
execution layer), so this module owns only the lowering — pattern caches,
motif recognition, peephole fusion — and the kernels' dtype polymorphism
carries over: every ``run*`` method takes a ``dtype`` (complex128 default,
complex64 for the :class:`~repro.kernels.ExecutionPolicy` fast mode), with
fused matrices and phase vectors downcast once per program, not per call.

The naive simulator remains the correctness oracle: the property suite
checks compiled-vs-naive equality amplitude-for-amplitude on randomized
circuits over the full gate set.
"""

from __future__ import annotations

import cmath
import threading
from functools import lru_cache

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.kernels import batched as _kb
from repro.kernels import primitives as _kp

__all__ = [
    "CompiledCircuit",
    "compile_circuit",
    "run_circuit_compiled",
    "compile_cache_info",
    "clear_compile_cache",
]

_SQRT2 = 1.0 / np.sqrt(2.0)
_MAT = {
    "H": np.array([[_SQRT2, _SQRT2], [_SQRT2, -_SQRT2]], dtype=np.complex128),
    "X": np.array([[0.0, 1.0], [1.0, 0.0]], dtype=np.complex128),
}
_ID2 = np.eye(2, dtype=np.complex128)

#: Gate names whose unitary is diagonal in the computational basis.
_DIAGONAL_GATES = frozenset({"Z", "P", "CZ", "MCZ", "MCP", "GPHASE"})


# --------------------------------------------------------------------------
# pattern-index cache
# --------------------------------------------------------------------------

def _frozen(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


@lru_cache(maxsize=512)
def _pattern_indices(n_qubits: int, ones_mask: int, zeros_mask: int) -> np.ndarray:
    """Sorted basis indices ``i`` with ``i & ones == ones`` and ``i & zeros == 0``.

    Enumerated by expanding the free bits, so the cost is O(#matches), not
    O(2**n_qubits); the result is cached and marked read-only.
    """
    if ones_mask & zeros_mask:
        raise ValueError("ones_mask and zeros_mask overlap")
    idx = np.array([ones_mask], dtype=np.intp)
    for b in range(n_qubits - 1, -1, -1):
        bit = 1 << b
        if not (ones_mask | zeros_mask) & bit:
            idx = (idx[:, None] | np.array([0, bit], dtype=np.intp)).ravel()
    return _frozen(np.sort(idx))


@lru_cache(maxsize=512)
def _pair_indices(
    n_qubits: int, ones_mask: int, zeros_mask: int, target_bit: int
) -> tuple[np.ndarray, np.ndarray]:
    """The ``(lo, hi)`` index pair swapped by a pattern-controlled X."""
    lo = _pattern_indices(n_qubits, ones_mask, zeros_mask | target_bit)
    return lo, _frozen(lo | target_bit)


def _bit(qubit: int, n_qubits: int) -> int:
    return 1 << (n_qubits - 1 - qubit)


def _ones_mask(qubits, n_qubits: int) -> int:
    mask = 0
    for q in qubits:
        mask |= _bit(q, n_qubits)
    return mask


# --------------------------------------------------------------------------
# compiled operations (all broadcast over leading axes of shape (..., N))
# --------------------------------------------------------------------------

class _Op:
    """One fused operation; ``apply`` may mutate and/or return the state."""

    diagonal = False

    def apply(self, state: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class SingleQubitOp(_Op):
    """A (possibly fused) 2x2 unitary on one wire, via a reshaped matmul.

    The canonical matrix is complex128; narrower state dtypes get a
    once-per-program downcast copy (matmul would otherwise upcast the whole
    state back to complex128 every application).
    """

    def __init__(self, qubit: int, mat: np.ndarray, n_qubits: int):
        self.qubit = qubit
        self.mat = np.ascontiguousarray(mat, dtype=np.complex128)
        self.left = 1 << qubit
        self.right = 1 << (n_qubits - 1 - qubit)
        self._mat_cache: dict = {}

    def _mat_for(self, dtype) -> np.ndarray:
        if dtype == np.complex128:
            return self.mat
        mat = self._mat_cache.get(dtype)
        if mat is None:  # benign race on shared programs: last writer wins
            mat = self._mat_cache[dtype] = self.mat.astype(dtype)
        return mat

    def apply(self, state: np.ndarray) -> np.ndarray:
        shape = state.shape
        view = state.reshape(*shape[:-1], self.left, 2, self.right)
        return np.matmul(self._mat_for(state.dtype), view).reshape(shape)

    def fused_with(self, later: "SingleQubitOp") -> "SingleQubitOp":
        out = SingleQubitOp.__new__(SingleQubitOp)
        out.qubit, out.left, out.right = self.qubit, self.left, self.right
        out.mat = np.ascontiguousarray(later.mat @ self.mat)
        out._mat_cache = {}
        return out

    @property
    def is_identity(self) -> bool:
        return bool(np.allclose(self.mat, _ID2, atol=1e-15))


class GlobalPhaseOp(_Op):
    """Multiply the whole state by a scalar."""

    diagonal = True

    def __init__(self, factor: complex):
        self.factor = factor

    def apply(self, state: np.ndarray) -> np.ndarray:
        state *= self.factor
        return state


class PhaseMaskOp(_Op):
    """Multiply the amplitudes at a cached index set by one scalar.

    The masked multiply itself is the kernel layer's
    :func:`repro.kernels.apply_phase_factor` — the oracle reflection ``I_t``
    when the factor is −1 (a weak Python scalar, so any state dtype wins).
    """

    diagonal = True

    def __init__(self, indices: np.ndarray, factor: complex, oracle: bool = False):
        self.indices = indices
        self.factor = factor
        self.oracle = oracle

    def apply(self, state: np.ndarray) -> np.ndarray:
        return _kp.apply_phase_factor(state, self.indices, self.factor)


class DiagonalOp(_Op):
    """Elementwise multiply by a precomputed length-N phase vector.

    Canonically complex128 with a once-per-program downcast for narrower
    state dtypes, mirroring :class:`SingleQubitOp`.
    """

    diagonal = True

    def __init__(self, phases: np.ndarray):
        self.phases = _frozen(np.asarray(phases, dtype=np.complex128))
        self._cache: dict = {}

    def _phases_for(self, dtype) -> np.ndarray:
        if dtype == np.complex128:
            return self.phases
        phases = self._cache.get(dtype)
        if phases is None:
            phases = self._cache[dtype] = _frozen(self.phases.astype(dtype))
        return phases

    def apply(self, state: np.ndarray) -> np.ndarray:
        state *= self._phases_for(state.dtype)
        return state


class SwapPairsOp(_Op):
    """Swap amplitudes at cached ``(lo, hi)`` pairs (pattern-controlled X)."""

    def __init__(self, lo: np.ndarray, hi: np.ndarray, oracle: bool = False):
        self.lo = lo
        self.hi = hi
        self.oracle = oracle

    def apply(self, state: np.ndarray) -> np.ndarray:
        tmp = state[..., self.lo]  # fancy indexing already copies
        state[..., self.lo] = state[..., self.hi]
        state[..., self.hi] = tmp
        return state


class DiffusionOp(_Op):
    """``I - 2|u><u|`` (or ``2|u><u| - I``) over a contiguous wire range.

    ``|u>`` is the uniform state of wires ``[first, first + width)``; for
    every setting of the remaining wires the operator acts independently,
    which is exactly the builders' ``H* X* MCZ X* H*`` motif.  Extra MCZ
    controls on *later* (less significant) wires restrict the update to the
    control-matched part of the trailing axis.  ``negate=True`` absorbs a
    following ``GPHASE(pi)``, turning the natural ``I - 2|u><u|`` into the
    paper's ``+I_0``.

    When the controls match exactly **one** trailing column — true whenever
    the only control is the ancilla, i.e. Step 3's controlled inversion,
    the only controlled diffusion the builders emit today — the update runs
    on a copy-free strided view of that column instead of a fancy-indexed
    gather/scatter (``strided=False`` forces the general path; the
    equivalence is pinned by a test).
    """

    def __init__(
        self,
        n_qubits: int,
        first: int,
        width: int,
        ctrl_sel: np.ndarray | None = None,
        negate: bool = False,
        strided: bool = True,
    ):
        self.n_qubits = n_qubits
        self.first = first
        self.width = width
        self.left = 1 << first
        self.mid = 1 << width
        self.right = 1 << (n_qubits - first - width)
        self.ctrl_sel = ctrl_sel
        self.negate = negate
        self.ctrl_col = (
            int(ctrl_sel[0])
            if strided and ctrl_sel is not None and ctrl_sel.size == 1
            else None
        )
        # Scratch for the mean reduction, reused across applications with
        # the same (shape, dtype): compiled programs unroll l1+l2 diffusion
        # ops and run them once per shard chunk, so per-iteration mean/
        # broadcast temporaries otherwise dominate allocator traffic
        # (ROADMAP perf item).  Thread-local because compiled programs are
        # shared through an lru_cache and the serving layer runs them from
        # a thread pool.  Results are bit-identical with or without reuse.
        self._scratch = threading.local()

    def _mean_scratch(self, shape: tuple, dtype) -> np.ndarray:
        buf = getattr(self._scratch, "buf", None)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = self._scratch.buf = np.empty(shape, dtype=dtype)
        return buf

    def negated(self) -> "DiffusionOp":
        return DiffusionOp(
            self.n_qubits,
            self.first,
            self.width,
            self.ctrl_sel,
            not self.negate,
            strided=self.ctrl_col is not None or self.ctrl_sel is None,
        )

    def apply(self, state: np.ndarray) -> np.ndarray:
        view = state.reshape(*state.shape[:-1], self.left, self.mid, self.right)
        if self.ctrl_sel is None:
            shape = view.shape[:-2] + (1,) + view.shape[-1:]
            _kp.invert_about_axis_mean(
                view, -2, negate=self.negate,
                mean_out=self._mean_scratch(shape, view.dtype),
            )
            return state
        if self.ctrl_col is not None:
            # Single matched column: basic indexing yields a strided view
            # into the state, so the kernel updates it with zero copies.
            sub = view[..., self.ctrl_col]
            shape = sub.shape[:-1] + (1,)
            _kp.invert_about_axis_mean(
                sub, -1, negate=self.negate,
                mean_out=self._mean_scratch(shape, sub.dtype),
            )
            return state
        sub = view[..., self.ctrl_sel]  # copy of the control-matched columns
        _kp.invert_about_axis_mean(sub, -2, negate=self.negate)
        view[..., self.ctrl_sel] = sub
        return state


class ParametricPhaseFlipOp(_Op):
    """Per-row oracle flip: row ``i`` negates its own target's amplitudes.

    Compiled from an oracle-tagged conjugated-MCZ pattern whose controls are
    the leading address wires; the remaining (trailing) wires are free, so
    target ``t`` of row ``i`` owns the contiguous index range
    ``[t * 2**n_free, (t+1) * 2**n_free)``.
    """

    def __init__(self, n_free: int):
        self.n_free = n_free

    def apply_multi(self, state: np.ndarray, rows: np.ndarray, targets: np.ndarray) -> np.ndarray:
        view = state.reshape(state.shape[0], -1, 1 << self.n_free)
        _kb.phase_flip_rows(view, targets, rows)
        return state


class ParametricMoveOutOp(_Op):
    """Per-row move-out: swap the ancilla pair of each row's own target."""

    def apply_multi(self, state: np.ndarray, rows: np.ndarray, targets: np.ndarray) -> np.ndarray:
        view = state.reshape(state.shape[0], -1, 2)
        _kb.moveout_rows(view, targets, rows)
        return state


_PARAMETRIC_TYPES = (ParametricPhaseFlipOp, ParametricMoveOutOp)


# --------------------------------------------------------------------------
# lowering: gates -> ops
# --------------------------------------------------------------------------

def _lower_gate(gate: Gate, n: int) -> _Op:
    """Lower one gate to a compiled op (masks pulled from the cache)."""
    name = gate.name
    if name in ("H", "X"):
        return SingleQubitOp(gate.qubits[0], _MAT[name], n)
    if name == "Z":
        return PhaseMaskOp(_pattern_indices(n, _bit(gate.qubits[0], n), 0), -1.0)
    if name == "P":
        return PhaseMaskOp(
            _pattern_indices(n, _bit(gate.qubits[0], n), 0), cmath.exp(1j * gate.param)
        )
    if name == "GPHASE":
        return GlobalPhaseOp(cmath.exp(1j * gate.param))
    if name in ("CZ", "MCZ"):
        return PhaseMaskOp(
            _pattern_indices(n, _ones_mask(gate.qubits, n), 0), -1.0, oracle=gate.is_oracle
        )
    if name == "MCP":
        return PhaseMaskOp(
            _pattern_indices(n, _ones_mask(gate.qubits, n), 0),
            cmath.exp(1j * gate.param),
            oracle=gate.is_oracle,
        )
    if name in ("CX", "MCX"):
        controls, target = gate.qubits[:-1], gate.qubits[-1]
        lo, hi = _pair_indices(n, _ones_mask(controls, n), 0, _bit(target, n))
        return SwapPairsOp(lo, hi, oracle=gate.is_oracle)
    raise ValueError(f"compiler does not know gate {gate.name!r}")  # pragma: no cover


def _match_layer(gates: list[Gate], i: int, name: str, qubits: frozenset) -> int | None:
    """If ``gates[i:]`` starts with *name* gates covering exactly *qubits*
    (each wire once), return the index just past the layer, else ``None``."""
    seen = set()
    j = i
    while (
        seen != qubits
        and j < len(gates)
        and gates[j].name == name
        and gates[j].qubits[0] in qubits
    ):
        q = gates[j].qubits[0]
        if q in seen:
            return None
        seen.add(q)
        j += 1
    return j if seen == qubits else None


def _match_diffusion(gates: list[Gate], i: int, n: int) -> tuple[DiffusionOp, int] | None:
    """Recognise ``H*(Q) X*(Q) MCZ(Q+C) X*(Q) H*(Q)`` starting at ``i``.

    Q must be a contiguous wire range and any extra controls C must sit on
    later (less significant) wires, so the kernel can address them on the
    trailing axis of a reshape.  Returns the op and the index past the motif.
    """
    j = i
    qs = []
    while j < len(gates) and gates[j].name == "H":
        qs.append(gates[j].qubits[0])
        j += 1
    if not qs or len(set(qs)) != len(qs):
        return None
    q_set = frozenset(qs)
    lo, hi = min(q_set), max(q_set)
    if hi - lo + 1 != len(q_set):
        return None  # not contiguous
    j = _match_layer(gates, j, "X", q_set)
    if j is None or j >= len(gates):
        return None
    mcz = gates[j]
    if mcz.name not in ("CZ", "MCZ") or not q_set <= set(mcz.qubits):
        return None
    if mcz.is_oracle:
        # Keep tagged queries as standalone pattern ops: query counting and
        # parametric-target substitution both need them addressable.
        return None
    extras = set(mcz.qubits) - q_set
    if any(e <= hi for e in extras):
        return None  # controls must live after the diffusion range
    j = _match_layer(gates, j + 1, "X", q_set)
    if j is None:
        return None
    j = _match_layer(gates, j, "H", q_set)
    if j is None:
        return None
    ctrl_sel = None
    if extras:
        n_right = n - hi - 1
        ctrl_sel = _pattern_indices(n_right, _ones_mask([e - hi - 1 for e in extras], n_right), 0)
    return DiffusionOp(n, lo, hi - lo + 1, ctrl_sel), j


def _match_conjugated(gates: list[Gate], i: int, n: int) -> tuple[_Op, int] | None:
    """Recognise ``X*(S) (MCZ|MCP|MCX)(Q) X*(S)`` with ``S`` inside the
    controls of the central gate: a phase flip / bit swap on the conjugated
    pattern (controls in S must be 0, the rest 1)."""
    j = i
    s = []
    while j < len(gates) and gates[j].name == "X":
        s.append(gates[j].qubits[0])
        j += 1
    if not s or len(set(s)) != len(s) or j >= len(gates):
        return None
    s_set = frozenset(s)
    centre = gates[j]
    if centre.name in ("CZ", "MCZ", "MCP"):
        controls = set(centre.qubits)
    elif centre.name in ("CX", "MCX"):
        controls = set(centre.qubits[:-1])
    else:
        return None
    if not s_set <= controls:
        return None
    j = _match_layer(gates, j + 1, "X", s_set)
    if j is None:
        return None
    ones = _ones_mask(controls - s_set, n)
    zeros = _ones_mask(s_set, n)
    if centre.name in ("CZ", "MCZ"):
        op: _Op = PhaseMaskOp(_pattern_indices(n, ones, zeros), -1.0, oracle=centre.is_oracle)
    elif centre.name == "MCP":
        op = PhaseMaskOp(
            _pattern_indices(n, ones, zeros),
            cmath.exp(1j * centre.param),
            oracle=centre.is_oracle,
        )
    else:
        tbit = _bit(centre.qubits[-1], n)
        lo_idx, hi_idx = _pair_indices(n, ones, zeros, tbit)
        op = SwapPairsOp(lo_idx, hi_idx, oracle=centre.is_oracle)
    return op, j


def _recognise(circuit: Circuit) -> list[_Op]:
    """One left-to-right pass of motif recognition + per-gate lowering."""
    gates = list(circuit.gates)
    n = circuit.n_qubits
    ops: list[_Op] = []
    i = 0
    while i < len(gates):
        matched = _match_diffusion(gates, i, n)
        if matched is None:
            matched = _match_conjugated(gates, i, n)
        if matched is not None:
            op, i = matched
            ops.append(op)
            continue
        ops.append(_lower_gate(gates[i], n))
        i += 1
    return ops


# --------------------------------------------------------------------------
# peephole passes over the op list
# --------------------------------------------------------------------------

def _fuse_single_qubit(ops: list[_Op]) -> list[_Op]:
    """Fuse single-qubit ops per wire; ops on other wires commute through.

    Pending 2x2 matrices accumulate until an op that is not single-qubit
    appears (a barrier), at which point they flush in first-touched order
    (mutually commuting, so any order is exact).  Identity products vanish.
    """
    out: list[_Op] = []
    pending: dict[int, SingleQubitOp] = {}

    def flush() -> None:
        for op in pending.values():
            if not op.is_identity:
                out.append(op)
        pending.clear()

    for op in ops:
        if isinstance(op, SingleQubitOp):
            prev = pending.get(op.qubit)
            pending[op.qubit] = prev.fused_with(op) if prev is not None else op
        else:
            flush()
            out.append(op)
    flush()
    return out


def _fold_diffusion_sign(ops: list[_Op]) -> list[_Op]:
    """``DiffusionOp`` followed by ``GPHASE(pi)`` becomes one negated kernel
    (only for uncontrolled diffusion — a controlled one is not global)."""
    out: list[_Op] = []
    i = 0
    while i < len(ops):
        op = ops[i]
        nxt = ops[i + 1] if i + 1 < len(ops) else None
        if (
            isinstance(op, DiffusionOp)
            and op.ctrl_sel is None
            and isinstance(nxt, GlobalPhaseOp)
            and abs(nxt.factor + 1.0) < 1e-15
        ):
            out.append(op.negated())
            i += 2
            continue
        out.append(op)
        i += 1
    return out


def _coalesce_diagonals(ops: list[_Op], dim: int) -> list[_Op]:
    """Merge runs of >= 2 diagonal ops into one phase vector — re-sparsified
    to a scalar or single masked multiply when the product allows."""
    def mergeable(op: _Op) -> bool:
        # Tagged queries stay standalone: query-structure inspection and
        # parametric-target substitution address them individually.
        return op.diagonal and not getattr(op, "oracle", False)

    out: list[_Op] = []
    i = 0
    while i < len(ops):
        if not mergeable(ops[i]):
            out.append(ops[i])
            i += 1
            continue
        j = i
        while j < len(ops) and mergeable(ops[j]):
            j += 1
        run = ops[i:j]
        i = j
        if len(run) == 1:
            out.append(run[0])
            continue
        vec = np.ones(dim, dtype=np.complex128)
        for op in run:
            op.apply(vec)
        merged = _sparsify_diagonal(vec)
        if merged is not None:
            out.append(merged)
    return out


def _sparsify_diagonal(vec: np.ndarray) -> _Op | None:
    """Cheapest op equivalent to multiplying by *vec* (None = identity)."""
    values = np.unique(vec)
    if values.size == 1:
        factor = complex(values[0])
        if abs(factor - 1.0) < 1e-15:
            return None
        return GlobalPhaseOp(factor)
    if values.size == 2 and np.any(np.abs(values - 1.0) < 1e-15):
        factor = complex(values[np.argmax(np.abs(values - 1.0))])
        idx = _frozen(np.flatnonzero(np.abs(vec - 1.0) >= 1e-15))
        return PhaseMaskOp(idx, factor)
    return DiagonalOp(vec)


# --------------------------------------------------------------------------
# the compiled program
# --------------------------------------------------------------------------

class CompiledCircuit:
    """A circuit lowered to fused ops, runnable on single or batched states.

    Attributes:
        n_qubits: wire count of the source circuit.
        ops: the fused operation list (inspection/testing surface).
        parametric: whether oracle-tagged ops read per-row targets
            (see :meth:`run_multi_target`).
    """

    def __init__(self, n_qubits: int, ops: list[_Op], parametric: bool = False):
        self.n_qubits = n_qubits
        self.ops = ops
        self.parametric = parametric

    @property
    def dim(self) -> int:
        """State-vector length ``2**n_qubits``."""
        return 1 << self.n_qubits

    @property
    def n_ops(self) -> int:
        """Fused program length (compare against the source gate count)."""
        return len(self.ops)

    def _initial(self, initial, lead: tuple[int, ...] = (), dtype=np.complex128) -> np.ndarray:
        if initial is None:
            state = np.zeros(lead + (self.dim,), dtype=dtype)
            state[..., 0] = 1.0
            return state
        state = np.array(initial, dtype=dtype, copy=True)
        if state.shape != lead + (self.dim,):
            raise ValueError(f"initial state must have shape {lead + (self.dim,)}")
        return state

    def run(self, initial: np.ndarray | None = None, *, dtype=np.complex128) -> np.ndarray:
        """Execute on one state; returns a fresh ``(2**n,)`` complex array.

        ``dtype`` selects the state precision (the
        :class:`~repro.kernels.ExecutionPolicy` complex dtype); every fused
        op preserves it, downcasting its constants once per program.
        """
        if self.parametric:
            raise ValueError("parametric programs need run_multi_target(targets)")
        state = self._initial(initial, dtype=dtype)
        for op in self.ops:
            state = op.apply(state)
        return state

    def run_batch(self, initials: np.ndarray, *, dtype=np.complex128) -> np.ndarray:
        """Execute on a ``(B, 2**n)`` batch of states in one fused sweep.

        Every row evolves under the same program; masks, fused matrices and
        diffusion plans are shared across the batch.
        """
        if self.parametric:
            raise ValueError("parametric programs need run_multi_target(targets)")
        initials = np.asarray(initials)
        if initials.ndim != 2:
            raise ValueError("run_batch expects a (B, 2**n) state matrix")
        state = self._initial(initials, lead=(initials.shape[0],), dtype=dtype)
        for op in self.ops:
            state = op.apply(state)
        return state

    def run_multi_target(
        self, targets, initial: np.ndarray | None = None, *, dtype=np.complex128
    ) -> np.ndarray:
        """Execute one row per target; oracle ops act on each row's target.

        Args:
            targets: shape ``(B,)`` target addresses, one per row.
            initial: optional shared ``(2**n,)`` initial state (default
                ``|0...0>``); every row starts from it.
            dtype: state precision (see :meth:`run`).

        Returns:
            The ``(B, 2**n)`` final states.
        """
        if not self.parametric:
            raise ValueError("program was not compiled with parametric_targets=True")
        targets = np.asarray(targets, dtype=np.intp)
        if targets.ndim != 1 or targets.size == 0:
            raise ValueError("targets must be a non-empty 1-D collection")
        rows = np.arange(targets.size)
        if initial is not None:
            initial = np.broadcast_to(
                np.asarray(initial, dtype=dtype), (targets.size, self.dim)
            )
        state = self._initial(initial, lead=(targets.size,), dtype=dtype)
        for op in self.ops:
            if isinstance(op, _PARAMETRIC_TYPES):
                state = op.apply_multi(state, rows, targets)
            else:
                state = op.apply(state)
        return state


def _parametrise(
    ops: list[_Op], n_qubits: int, n_address_qubits: int, n_oracle_gates: int
) -> list[_Op]:
    """Swap oracle-tagged pattern ops for target-parametric equivalents.

    Requires each oracle op to control on exactly the ``n_address_qubits``
    leading wires (the builders' convention), so a row's target selects a
    contiguous index range.
    """
    n_free = n_qubits - n_address_qubits
    n_found = 0
    out: list[_Op] = []
    for op in ops:
        if isinstance(op, PhaseMaskOp) and op.oracle:
            base, last = int(op.indices[0]), int(op.indices[-1])
            block = 1 << n_free
            if op.indices.size != block or base % block or last != base + block - 1:
                raise ValueError("oracle pattern does not cover the address register")
            if abs(op.factor + 1.0) > 1e-15:
                raise ValueError("parametric oracles must be phase flips")
            out.append(ParametricPhaseFlipOp(n_free))
            n_found += 1
        elif isinstance(op, SwapPairsOp) and op.oracle:
            if n_free != 1 or op.lo.size != 1 or int(op.hi[0]) != int(op.lo[0]) | 1:
                raise ValueError(
                    "parametric move-out needs the ancilla as the only free wire"
                )
            out.append(ParametricMoveOutOp())
            n_found += 1
        else:
            out.append(op)
    if n_found != n_oracle_gates:
        raise ValueError(
            f"found {n_found} oracle ops but the circuit tags {n_oracle_gates}; "
            "an oracle gate was fused away or not pattern-matched"
        )
    return out


def compile_circuit(
    circuit: Circuit,
    *,
    optimize: bool = True,
    parametric_targets: bool = False,
    n_address_qubits: int | None = None,
) -> CompiledCircuit:
    """Lower *circuit* into a :class:`CompiledCircuit`.

    Args:
        circuit: the source circuit (not mutated; compiled by value).
        optimize: run the fusion passes (motif recognition always runs; with
            ``optimize=False`` the peephole passes are skipped — used by
            tests to compare pass output).
        parametric_targets: replace oracle-tagged pattern ops with per-row
            target ops for :meth:`CompiledCircuit.run_multi_target`.  The
            source circuit's concrete target is ignored at run time.
        n_address_qubits: width of the address register (leading wires);
            required with ``parametric_targets``.  Defaults to ``n_qubits``.

    Returns:
        The compiled program.
    """
    ops = _recognise(circuit)
    if optimize:
        ops = _fuse_single_qubit(ops)
        ops = _fold_diffusion_sign(ops)
        ops = _coalesce_diagonals(ops, 1 << circuit.n_qubits)
    if parametric_targets:
        n_addr = circuit.n_qubits if n_address_qubits is None else n_address_qubits
        ops = _parametrise(ops, circuit.n_qubits, n_addr, circuit.oracle_queries)
    return CompiledCircuit(circuit.n_qubits, ops, parametric=parametric_targets)


#: Memoised programs keyed on :attr:`Circuit.structural_fingerprint` — the
#: O(1) running digest folded at ``Circuit.append`` time, so a cache hit
#: never re-hashes the ~2.5k-gate tuple.  Insertion-ordered dict used as an
#: LRU: hits are re-inserted at the end, eviction pops the front.
_COMPILE_CACHE: dict[tuple, CompiledCircuit] = {}
_COMPILE_CACHE_MAX = 64
_COMPILE_CACHE_LOCK = threading.Lock()
_compile_cache_stats = {"hits": 0, "misses": 0}


def compile_cache_info() -> dict:
    """Hit/miss/size counters of the fingerprint-keyed compile cache."""
    with _COMPILE_CACHE_LOCK:
        return {**_compile_cache_stats, "size": len(_COMPILE_CACHE)}


def clear_compile_cache() -> None:
    """Drop every memoised program (and reset the counters)."""
    with _COMPILE_CACHE_LOCK:
        _COMPILE_CACHE.clear()
        _compile_cache_stats["hits"] = 0
        _compile_cache_stats["misses"] = 0


def run_circuit_compiled(
    circuit: Circuit, initial: np.ndarray | None = None, *, dtype=np.complex128
) -> np.ndarray:
    """Drop-in replacement for :func:`repro.circuits.simulator.run_circuit`
    that compiles (memoised on the circuit's structural fingerprint) and
    executes at the requested state *dtype*."""
    key = circuit.structural_fingerprint
    with _COMPILE_CACHE_LOCK:
        program = _COMPILE_CACHE.pop(key, None)
        if program is not None:
            _compile_cache_stats["hits"] += 1
            _COMPILE_CACHE[key] = program  # refresh LRU recency
    if program is None:
        # Compile outside the lock (it is the expensive part); a racing
        # duplicate compile is harmless — last writer wins.
        program = compile_circuit(circuit)
        with _COMPILE_CACHE_LOCK:
            _compile_cache_stats["misses"] += 1
            while len(_COMPILE_CACHE) >= _COMPILE_CACHE_MAX:
                _COMPILE_CACHE.pop(next(iter(_COMPILE_CACHE)), None)
            _COMPILE_CACHE[key] = program
    return program.run(initial, dtype=dtype)
