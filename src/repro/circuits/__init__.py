"""Gate-level circuit IR: the paper's algorithms as real quantum circuits.

The structured kernels in :mod:`repro.statevector.ops` are mathematically
convenient but hide the circuit cost model.  This package expresses the same
algorithms with an explicit gate set — ``H``, ``X``, ``Z``, phase gates,
multi-controlled ``Z``/``X`` and a bookkeeping global phase — and simulates
them qubit-wise, so the test suite can verify gate-for-gate that

- the oracle circuit (X-conjugated MCZ) equals ``I_t``,
- the diffusion circuit (``H X MCZ X H`` + global phase) equals ``I_0``,
- the block diffusion acts only on the last ``n - k`` qubits (= ``I_K ⊗
  I_0,[N/K]`` because the block index is the *first* k bits),
- the full Step 1/2/3 circuit — ancilla included — reproduces the
  state-vector runner's output exactly.

Qubit convention: qubit 0 is the **most significant** address bit, matching
the paper's "first k bits" semantics; the optional ancilla is the last wire.
"""

from repro.circuits.gates import Gate
from repro.circuits.circuit import Circuit
from repro.circuits.simulator import apply_gate, run_circuit
from repro.circuits.builders import (
    block_diffusion_circuit,
    diffusion_circuit,
    grover_circuit,
    oracle_circuit,
    partial_search_circuit,
    uniform_superposition_circuit,
)

__all__ = [
    "Gate",
    "Circuit",
    "apply_gate",
    "run_circuit",
    "block_diffusion_circuit",
    "diffusion_circuit",
    "grover_circuit",
    "oracle_circuit",
    "partial_search_circuit",
    "uniform_superposition_circuit",
]
