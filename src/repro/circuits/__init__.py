"""Gate-level circuit IR: the paper's algorithms as real quantum circuits.

The structured kernels in :mod:`repro.statevector.ops` are mathematically
convenient but hide the circuit cost model.  This package expresses the same
algorithms with an explicit gate set — ``H``, ``X``, ``Z``, phase gates,
multi-controlled ``Z``/``X`` and a bookkeeping global phase — and simulates
them qubit-wise, so the test suite can verify gate-for-gate that

- the oracle circuit (X-conjugated MCZ) equals ``I_t``,
- the diffusion circuit (``H X MCZ X H`` + global phase) equals ``I_0``,
- the block diffusion acts only on the last ``n - k`` qubits (= ``I_K ⊗
  I_0,[N/K]`` because the block index is the *first* k bits),
- the full Step 1/2/3 circuit — ancilla included — reproduces the
  state-vector runner's output exactly.

Qubit convention: qubit 0 is the **most significant** address bit, matching
the paper's "first k bits" semantics; the optional ancilla is the last wire.

Execution backends
------------------
Two registered simulator backends execute circuits (:data:`BACKENDS`,
selected by name through :func:`execute` or the ``backend=`` parameters on
the :mod:`repro.core` runners):

- ``"naive"`` — :func:`~repro.circuits.simulator.run_circuit`: gate-by-gate
  interpretation.  Simple, obviously correct; kept as the oracle against
  which the compiled backend is property-tested.
- ``"compiled"`` — :func:`~repro.circuits.compiler.run_circuit_compiled`:
  lowers the circuit once (memoised on the gate sequence) into a fused
  program, then executes it.  The fusion rules, in order:

  1. *oracle/move-out recognition* — an ``X``-layer-conjugated ``MCZ`` /
     ``MCP`` / ``MCX`` becomes one masked phase flip or index swap on the
     conjugated bit pattern;
  2. *diffusion recognition* — the ``H* X* MCZ X* H*`` motif becomes a
     single O(N) inversion-about-the-mean kernel (the
     :mod:`repro.statevector.ops` operator), with a following
     ``GPHASE(pi)`` folded into its sign;
  3. *single-qubit fusion* — adjacent 2x2 gates on one wire (gates on other
     wires commute through) multiply together; identity products vanish;
  4. *diagonal coalescing* — runs of diagonal gates merge into one phase
     vector, re-sparsified to a scalar or masked multiply when possible;
  5. *mask caching* — every pattern index array is precomputed once per
     ``(n_qubits, ones_mask, zeros_mask)`` signature and shared
     process-wide.

  Compiled programs also run ``(B, N)`` batches
  (:meth:`~repro.circuits.compiler.CompiledCircuit.run_batch`) and, when
  compiled with ``parametric_targets=True``, per-row-target sweeps
  (:meth:`~repro.circuits.compiler.CompiledCircuit.run_multi_target`) —
  one program, one set of masks, every target at once.
"""

from repro.circuits.gates import Gate
from repro.circuits.circuit import Circuit
from repro.circuits.simulator import apply_gate, run_circuit
from repro.circuits.compiler import (
    CompiledCircuit,
    compile_circuit,
    run_circuit_compiled,
)
from repro.circuits.builders import (
    block_diffusion_circuit,
    diffusion_circuit,
    grover_circuit,
    oracle_circuit,
    partial_search_circuit,
    uniform_superposition_circuit,
)

__all__ = [
    "Gate",
    "Circuit",
    "apply_gate",
    "run_circuit",
    "CompiledCircuit",
    "compile_circuit",
    "run_circuit_compiled",
    "BACKENDS",
    "get_backend",
    "execute",
    "block_diffusion_circuit",
    "diffusion_circuit",
    "grover_circuit",
    "oracle_circuit",
    "partial_search_circuit",
    "uniform_superposition_circuit",
]

#: Registered simulator backends:
#: name -> ``f(circuit, initial=None, *, dtype=np.complex128) -> state``.
#: ``dtype`` is the state precision the :class:`~repro.kernels.ExecutionPolicy`
#: selects; :func:`execute` forwards it whenever a caller supplies one, so
#: every registered backend must accept the keyword.
BACKENDS = {
    "naive": run_circuit,
    "compiled": run_circuit_compiled,
}


def get_backend(name: str):
    """Look up a simulator backend by registry name.

    Raises:
        ValueError: for unknown names (listing the known ones).
    """
    try:
        return BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown backend {name!r} (known: {known})") from None


def execute(circuit: Circuit, initial=None, *, backend: str = "naive",
            dtype=None):
    """Run *circuit* on the selected backend; returns the final state.

    ``dtype`` selects the state precision (``None`` = the backends'
    complex128 default); both registered backends thread it through to
    their kernels, so a complex64 request stays complex64 end to end.
    """
    runner = get_backend(backend)
    if dtype is None:
        return runner(circuit, initial)
    return runner(circuit, initial, dtype=dtype)
