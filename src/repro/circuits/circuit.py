"""The circuit container: an ordered gate list on a fixed wire count.

Circuits also maintain a **structural fingerprint** — a 128-bit digest of
the wire count and gate sequence, folded incrementally at :meth:`append`
time.  The compiled backend memoises programs on it, so looking up a
~2.5k-gate circuit in the compile cache costs O(1) instead of re-hashing
the full gate tuple on every run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.circuits.gates import Gate

__all__ = ["Circuit"]


class _GateList(list):
    """Gate storage that versions every non-append mutation.

    ``append``/``extend`` stay on the fast path (length changes are caught
    by the fingerprint's own counter); every other mutator — item/slice
    assignment, deletion, ``insert``, ``pop``, ``remove``, ``sort``,
    ``reverse``, in-place operators — bumps ``version``, which the owning
    circuit compares against the version it last absorbed.  That makes
    out-of-contract in-place edits O(1)-detectable instead of silently
    serving a stale compiled program.
    """

    def __init__(self, iterable=()):
        super().__init__(iterable)
        self.version = 0

    def _bump(self):
        self.version += 1

    def __setitem__(self, index, value):
        self._bump()
        return super().__setitem__(index, value)

    def __delitem__(self, index):
        self._bump()
        return super().__delitem__(index)

    def __iadd__(self, other):
        self._bump()
        return super().__iadd__(other)

    def __imul__(self, other):
        self._bump()
        return super().__imul__(other)

    def insert(self, index, value):
        self._bump()
        return super().insert(index, value)

    def pop(self, index=-1):
        self._bump()
        return super().pop(index)

    def remove(self, value):
        self._bump()
        return super().remove(value)

    def clear(self):
        self._bump()
        return super().clear()

    def sort(self, **kwargs):
        self._bump()
        return super().sort(**kwargs)

    def reverse(self):
        self._bump()
        return super().reverse()

    def __reduce__(self):
        # list subclass pickling: rebuild from contents, restore version.
        return (_rebuild_gate_list, (list(self), self.version))


def _rebuild_gate_list(items, version):
    out = _GateList(items)
    out.version = version
    return out


@dataclass
class Circuit:
    """A quantum circuit on ``n_qubits`` wires.

    Wires are indexed ``0 .. n_qubits - 1`` with qubit 0 the most
    significant address bit (the paper's "first bit").  Gates are stored in
    application order.  Circuits are cheap value objects: composing copies
    gate tuples, never states.

    Attributes:
        n_qubits: number of wires.
        gates: the gate sequence (mutated only via :meth:`append` /
            :meth:`extend`).
    """

    n_qubits: int
    gates: list[Gate] = field(default_factory=list)

    def __post_init__(self):
        if self.n_qubits < 1:
            raise ValueError("n_qubits must be positive")
        if not isinstance(self.gates, _GateList):
            self.gates = _GateList(self.gates)
        self._reset_fingerprint()
        for gate in self.gates:
            self._check(gate)
            self._absorb(gate)

    def _check(self, gate: Gate) -> None:
        if gate.qubits and max(gate.qubits) >= self.n_qubits:
            raise ValueError(
                f"gate {gate} touches qubit {max(gate.qubits)} but circuit has "
                f"{self.n_qubits} wires"
            )

    # The fingerprint is a 128-bit polynomial fold of per-gate blake2b
    # digests — plain ints, so circuits stay picklable/copyable value
    # objects and each append costs O(1).
    _FP_MOD = 1 << 128
    _FP_PRIME = 0x1000000000000000000000000000018D  # odd, > 2**120

    def _reset_fingerprint(self) -> None:
        self._fp = self.n_qubits
        self._n_hashed = 0
        self._seen_version = getattr(self.gates, "version", -1)

    def _absorb(self, gate: Gate) -> None:
        """Fold one gate into the running fingerprint (O(1)).

        The encoding covers every semantic field, including ``tag``: tags do
        not change the unitary, but the compiler's fusion decisions key off
        oracle tags, so tagged and untagged twins must not share a program.
        """
        enc = f"{gate.name}|{gate.qubits}|{gate.param!r}|{gate.tag}".encode()
        g = int.from_bytes(hashlib.blake2b(enc, digest_size=16).digest(), "big")
        self._fp = (self._fp * self._FP_PRIME + g) % self._FP_MOD
        self._n_hashed += 1

    @property
    def structural_fingerprint(self) -> tuple[int, int, int]:
        """O(1) identity key ``(n_qubits, n_gates, digest)`` of this circuit.

        Two circuits with equal fingerprints have the same wire count and
        gate-for-gate identical sequences (up to 128-bit hash collisions).
        ``gates`` is contractually mutated only via :meth:`append` /
        :meth:`extend`; as a safety net, direct list edits are still
        detected in O(1) — length changes through the absorbed-gate
        counter, everything else (item/slice assignment, deletion,
        reordering) through the :class:`_GateList` mutation version — and
        trigger a full rebuild instead of serving a stale key.
        """
        stale = self._n_hashed != len(self.gates) or self._seen_version != getattr(
            self.gates, "version", -1
        )
        if stale:
            self._reset_fingerprint()
            for gate in self.gates:
                self._absorb(gate)
        return (self.n_qubits, len(self.gates), self._fp)

    # ------------------------------------------------------------- building
    def append(self, gate: Gate) -> "Circuit":
        """Add one gate (validated against the wire count); returns self."""
        self._check(gate)
        self.gates.append(gate)
        self._absorb(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        """Add many gates in order; returns self."""
        for g in gates:
            self.append(g)
        return self

    def compose(self, other: "Circuit") -> "Circuit":
        """New circuit: self followed by *other* (wire counts must match)."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("cannot compose circuits with different wire counts")
        return Circuit(self.n_qubits, list(self.gates) + list(other.gates))

    def repeated(self, times: int) -> "Circuit":
        """New circuit repeating this one *times* times."""
        if times < 0:
            raise ValueError("times must be non-negative")
        return Circuit(self.n_qubits, list(self.gates) * times)

    # ------------------------------------------------------------ inspection
    @property
    def n_gates(self) -> int:
        """Total gate count."""
        return len(self.gates)

    @property
    def oracle_queries(self) -> int:
        """Number of oracle-tagged gates — the circuit-level query count.

        Builders tag exactly one gate per oracle invocation (the central
        MCZ/MCX), so this equals the paper's query measure.
        """
        return sum(1 for g in self.gates if g.is_oracle)

    def depth_by_name(self) -> dict:
        """Histogram of gate names (for reporting/resource tables)."""
        out: dict = {}
        for g in self.gates:
            out[g.name] = out.get(g.name, 0) + 1
        return out

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __len__(self) -> int:
        return len(self.gates)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Circuit(n_qubits={self.n_qubits}, n_gates={self.n_gates})"
