"""The circuit container: an ordered gate list on a fixed wire count."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.circuits.gates import Gate

__all__ = ["Circuit"]


@dataclass
class Circuit:
    """A quantum circuit on ``n_qubits`` wires.

    Wires are indexed ``0 .. n_qubits - 1`` with qubit 0 the most
    significant address bit (the paper's "first bit").  Gates are stored in
    application order.  Circuits are cheap value objects: composing copies
    gate tuples, never states.

    Attributes:
        n_qubits: number of wires.
        gates: the gate sequence (mutated only via :meth:`append` /
            :meth:`extend`).
    """

    n_qubits: int
    gates: list[Gate] = field(default_factory=list)

    def __post_init__(self):
        if self.n_qubits < 1:
            raise ValueError("n_qubits must be positive")
        for gate in self.gates:
            self._check(gate)

    def _check(self, gate: Gate) -> None:
        if gate.qubits and max(gate.qubits) >= self.n_qubits:
            raise ValueError(
                f"gate {gate} touches qubit {max(gate.qubits)} but circuit has "
                f"{self.n_qubits} wires"
            )

    # ------------------------------------------------------------- building
    def append(self, gate: Gate) -> "Circuit":
        """Add one gate (validated against the wire count); returns self."""
        self._check(gate)
        self.gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        """Add many gates in order; returns self."""
        for g in gates:
            self.append(g)
        return self

    def compose(self, other: "Circuit") -> "Circuit":
        """New circuit: self followed by *other* (wire counts must match)."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("cannot compose circuits with different wire counts")
        return Circuit(self.n_qubits, list(self.gates) + list(other.gates))

    def repeated(self, times: int) -> "Circuit":
        """New circuit repeating this one *times* times."""
        if times < 0:
            raise ValueError("times must be non-negative")
        return Circuit(self.n_qubits, list(self.gates) * times)

    # ------------------------------------------------------------ inspection
    @property
    def n_gates(self) -> int:
        """Total gate count."""
        return len(self.gates)

    @property
    def oracle_queries(self) -> int:
        """Number of oracle-tagged gates — the circuit-level query count.

        Builders tag exactly one gate per oracle invocation (the central
        MCZ/MCX), so this equals the paper's query measure.
        """
        return sum(1 for g in self.gates if g.is_oracle)

    def depth_by_name(self) -> dict:
        """Histogram of gate names (for reporting/resource tables)."""
        out: dict = {}
        for g in self.gates:
            out[g.name] = out.get(g.name, 0) + 1
        return out

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __len__(self) -> int:
        return len(self.gates)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Circuit(n_qubits={self.n_qubits}, n_gates={self.n_gates})"
